// rijndael_e / rijndael_d — MiBench security/rijndael: AES-128 in ECB
// mode over a byte stream. The guest runs the *entire* cipher: key
// expansion (RotWord/SubWord/Rcon), and per block SubBytes, ShiftRows,
// MixColumns and AddRoundKey (inverses for decryption), using GF(2^8)
// multiplication tables in the data segment.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/references.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallBlocks = 72;
constexpr std::size_t kLargeBlocks = 768;

std::vector<u8> cipherKey(u64 seed) {
  return randomBytes("rijndael-key", InputSize::kSmall, 16, seed);
}

std::vector<u8> plaintext(InputSize size, u64 seed) {
  return randomBytes("rijndael", size,
                     16 * (size == InputSize::kSmall ? kSmallBlocks
                                                     : kLargeBlocks),
                     seed);
}

std::vector<u8> ciphertext(InputSize size, u64 seed) {
  const ref::Aes128 aes(cipherKey(seed));
  const std::vector<u8> pt = plaintext(size, seed);
  std::vector<u8> out(pt.size());
  for (std::size_t off = 0; off < pt.size(); off += 16) {
    aes.encryptBlock(pt.data() + off, out.data() + off);
  }
  return out;
}

std::array<u8, 256> gmulTable(u8 factor) {
  std::array<u8, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    t[i] = ref::aesGfmul(static_cast<u8>(i), factor);
  }
  return t;
}

class RijndaelWorkload : public Workload {
 public:
  RijndaelWorkload(u64 seed, bool decrypt) : Workload(seed), decrypt_(decrypt) {}

  std::string name() const override {
    return decrypt_ ? "rijndael_d" : "rijndael_e";
  }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    mb.data("sbox", ref::aesSbox());
    mb.data("isbox", ref::aesInvSbox());
    mb.data("gm2", gmulTable(2));
    mb.data("gm3", gmulTable(3));
    mb.data("gm9", gmulTable(9));
    mb.data("gm11", gmulTable(11));
    mb.data("gm13", gmulTable(13));
    mb.data("gm14", gmulTable(14));

    // shiftmap[r+4c] = r + 4((c+r)%4); dshiftmap is the inverse rotation.
    std::array<u8, 16> shiftmap{}, dshiftmap{};
    for (u32 r = 0; r < 4; ++r) {
      for (u32 c = 0; c < 4; ++c) {
        shiftmap[r + 4 * c] = static_cast<u8>(r + 4 * ((c + r) % 4));
        dshiftmap[r + 4 * c] = static_cast<u8>(r + 4 * ((c + 4 - r) % 4));
      }
    }
    mb.data("shiftmap", shiftmap);
    mb.data("dshiftmap", dshiftmap);
    mb.data("aes_key", cipherKey(experimentSeed()));
    mb.bss("rk", 176);
    mb.bss("aes_state", 16);
    mb.bss("aes_tmp", 16);
    input_off_ = mb.bss("input", 16 * kLargeBlocks);
    nblocks_off_ = mb.bss("nblocks", 4);
    out_off_ = mb.bss("output", 16 * kLargeBlocks);

    emitExpand(mb);
    if (decrypt_) {
      emitDecrypt(mb);
    } else {
      emitEncrypt(mb);
    }

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6});
    f.call("aes_expand");
    f.la(r4, "input");
    f.la(r6, "output");
    f.la(r0, "nblocks");
    f.ldr(r5, r0);
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);
    f.mov(r0, r4);
    f.mov(r1, r6);
    f.call(decrypt_ ? "aes_decrypt" : "aes_encrypt");
    f.addi(r4, r4, 16);
    f.addi(r6, r6, 16);
    f.subi(r5, r5, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5, r6});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const std::vector<u8> in = decrypt_ ? ciphertext(size, experimentSeed())
                                        : plaintext(size, experimentSeed());
    writeBytes(memory, guestAddr(input_off_), in);
    memory.store32(guestAddr(nblocks_off_),
                   static_cast<u32>(in.size() / 16));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), 16 * kLargeBlocks);
  }

  std::vector<u8> expected(InputSize size) const override {
    std::vector<u8> e = decrypt_ ? plaintext(size, experimentSeed())
                                 : ciphertext(size, experimentSeed());
    e.resize(16 * kLargeBlocks, 0);
    return e;
  }

 private:
  // aes_expand: FIPS-197 key expansion from "aes_key" into "rk".
  static void emitExpand(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("aes_expand");
    f.prologue({r4, r5, r6, r7, r8, r9});
    f.la(r4, "aes_key");
    f.la(r5, "rk");
    f.la(r6, "sbox");

    f.movi(r0, 0);
    const auto cloop = f.label();
    f.bind(cloop);
    f.ldrbx(r1, r4, r0);
    f.strbx(r1, r5, r0);
    f.addi(r0, r0, 1);
    f.cmpiBr(r0, 16, Cond::kLt, cloop);

    f.movi(r7, 1);  // rcon
    f.movi(r8, 4);  // word index i
    const auto iloop = f.label();
    const auto no_rot = f.label();
    f.bind(iloop);
    // t0..t3 (r0..r3) = bytes of word i-1.
    f.lsli(r9, r8, 2);
    f.subi(r9, r9, 4);
    f.ldrbx(r0, r5, r9);
    f.addi(r12, r9, 1);
    f.ldrbx(r1, r5, r12);
    f.addi(r12, r9, 2);
    f.ldrbx(r2, r5, r12);
    f.addi(r12, r9, 3);
    f.ldrbx(r3, r5, r12);

    f.andi(r12, r8, 3);
    f.cmpiBr(r12, 0, Cond::kNe, no_rot);
    // (t0,t1,t2,t3) = (sbox[t1]^rcon, sbox[t2], sbox[t3], sbox[t0]).
    f.mov(r12, r0);
    f.ldrbx(r0, r6, r1);
    f.eor(r0, r0, r7);
    f.ldrbx(r1, r6, r2);
    f.ldrbx(r2, r6, r3);
    f.ldrbx(r3, r6, r12);
    f.la(r12, "gm2");
    f.ldrbx(r7, r12, r7);  // rcon = xtime(rcon)
    f.bind(no_rot);

    // rk[4i+b] = rk[4(i-4)+b] ^ tb.
    f.lsli(r9, r8, 2);
    const auto xorByte = [&](Reg t, i32 b) {
      f.subi(r12, r9, 16 - b);
      f.ldrbx(r15, r5, r12);
      f.eor(r15, r15, t);
      f.addi(r12, r9, b);
      f.strbx(r15, r5, r12);
    };
    xorByte(r0, 0);
    xorByte(r1, 1);
    xorByte(r2, 2);
    xorByte(r3, 3);

    f.addi(r8, r8, 1);
    f.cmpiBr(r8, 44, Cond::kLt, iloop);
    f.epilogue({r4, r5, r6, r7, r8, r9});
  }

  // aes_encrypt(r0 = in, r1 = out): one AES-128 block. The per-byte
  // operations are unrolled with immediate offsets and the ShiftRows
  // permutation folded into the offsets at build time — the shape of any
  // optimized AES byte implementation.
  static void emitEncrypt(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("aes_encrypt");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.mov(r4, r0);
    f.mov(r5, r1);
    f.la(r6, "rk");
    f.la(r7, "aes_state");
    f.la(r9, "aes_tmp");

    // AddRoundKey(0), unrolled.
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r4, i);
      f.ldrb(r2, r6, i);
      f.eor(r1, r1, r2);
      f.strb(r1, r7, i);
    }

    i32 shift[16];
    for (i32 r = 0; r < 4; ++r) {
      for (i32 c = 0; c < 4; ++c) shift[r + 4 * c] = r + 4 * ((c + r) % 4);
    }

    f.movi(r8, 1);  // round
    const auto rloop = f.label();
    const auto skipmix = f.label();
    const auto addkey = f.label();
    f.bind(rloop);
    // tmp[i] = sbox[state[shift[i]]]  (SubBytes + ShiftRows, unrolled).
    f.la(r10, "sbox");
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r7, shift[i]);
      f.ldrbx(r2, r10, r1);
      f.strb(r2, r9, i);
    }

    f.cmpiBr(r8, 10, Cond::kEq, skipmix);
    // MixColumns tmp -> state, all four columns unrolled.
    f.la(r10, "gm2");
    f.la(r11, "gm3");
    for (i32 c = 0; c < 4; ++c) {
      const i32 o = 4 * c;
      f.ldrb(r1, r9, o);       // a0
      f.ldrb(r2, r9, o + 1);   // a1
      f.ldrb(r3, r9, o + 2);   // a2
      f.ldrb(r12, r9, o + 3);  // a3
      // s0 = gm2[a0]^gm3[a1]^a2^a3
      f.ldrbx(r15, r10, r1);
      f.ldrbx(r4, r11, r2);
      f.eor(r15, r15, r4);
      f.eor(r15, r15, r3);
      f.eor(r15, r15, r12);
      f.strb(r15, r7, o);
      // s1 = a0^gm2[a1]^gm3[a2]^a3
      f.ldrbx(r15, r10, r2);
      f.ldrbx(r4, r11, r3);
      f.eor(r15, r15, r4);
      f.eor(r15, r15, r1);
      f.eor(r15, r15, r12);
      f.strb(r15, r7, o + 1);
      // s2 = a0^a1^gm2[a2]^gm3[a3]
      f.ldrbx(r15, r10, r3);
      f.ldrbx(r4, r11, r12);
      f.eor(r15, r15, r4);
      f.eor(r15, r15, r1);
      f.eor(r15, r15, r2);
      f.strb(r15, r7, o + 2);
      // s3 = gm3[a0]^a1^a2^gm2[a3]
      f.ldrbx(r15, r11, r1);
      f.ldrbx(r4, r10, r12);
      f.eor(r15, r15, r4);
      f.eor(r15, r15, r2);
      f.eor(r15, r15, r3);
      f.strb(r15, r7, o + 3);
    }
    f.jmp(addkey);

    f.bind(skipmix);  // final round: state = tmp
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r9, i);
      f.strb(r1, r7, i);
    }

    f.bind(addkey);  // state[i] ^= rk[16*round + i], unrolled
    f.lsli(r4, r8, 4);
    f.add(r4, r4, r6);  // &rk[16*round]
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r7, i);
      f.ldrb(r2, r4, i);
      f.eor(r1, r1, r2);
      f.strb(r1, r7, i);
    }

    f.addi(r8, r8, 1);
    f.cmpiBr(r8, 10, Cond::kLe, rloop);

    // state -> out.
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r7, i);
      f.strb(r1, r5, i);
    }
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  // aes_decrypt(r0 = in, r1 = out): inverse cipher, unrolled like the
  // encryptor (InvShiftRows folded into immediate offsets).
  static void emitDecrypt(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("aes_decrypt");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.mov(r4, r0);
    f.mov(r5, r1);
    f.la(r6, "rk");
    f.la(r7, "aes_state");
    f.la(r9, "aes_tmp");

    // AddRoundKey(10): state = in ^ rk[160..175], unrolled.
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r4, i);
      f.ldrb(r2, r6, 160 + i);
      f.eor(r1, r1, r2);
      f.strb(r1, r7, i);
    }

    i32 dshift[16];
    for (i32 r = 0; r < 4; ++r) {
      for (i32 c = 0; c < 4; ++c) {
        dshift[r + 4 * c] = r + 4 * ((c + 4 - r) % 4);
      }
    }

    f.movi(r8, 9);  // round 9 .. 0
    const auto rloop = f.label();
    const auto no_mix = f.label();
    const auto nextround = f.label();
    f.bind(rloop);
    // InvShiftRows (gather, unrolled): tmp[i] = state[dshift[i]].
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r7, dshift[i]);
      f.strb(r1, r9, i);
    }

    // InvSubBytes + AddRoundKey, unrolled over bytes.
    f.la(r10, "isbox");
    f.lsli(r11, r8, 4);
    f.add(r11, r11, r6);  // &rk[16*round]
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r9, i);
      f.ldrbx(r2, r10, r1);
      f.ldrb(r3, r11, i);
      f.eor(r2, r2, r3);
      f.strb(r2, r7, i);
    }

    f.cmpiBr(r8, 0, Cond::kEq, no_mix);
    // InvMixColumns in place, all four columns unrolled. Table bases in
    // r10/r11/r0/r4 (r4 is dead after the initial AddRoundKey).
    f.la(r10, "gm14");
    f.la(r11, "gm11");
    f.la(r0, "gm13");
    f.la(r4, "gm9");
    for (i32 c = 0; c < 4; ++c) {
      const i32 o = 4 * c;
      f.ldrb(r1, r7, o);       // a0
      f.ldrb(r2, r7, o + 1);   // a1
      f.ldrb(r3, r7, o + 2);   // a2
      f.ldrb(r12, r7, o + 3);  // a3
      const Reg a[4] = {r1, r2, r3, r12};
      const Reg tbl[4] = {r10, r11, r0, r4};  // gm14, gm11, gm13, gm9
      for (int row = 0; row < 4; ++row) {
        bool first = true;
        for (int col = 0; col < 4; ++col) {
          // coefficient index for (row, col): (col - row + 4) % 4.
          f.ldrbx(r9, tbl[(col - row + 4) % 4], a[col]);
          if (first) {
            f.mov(r15, r9);
            first = false;
          } else {
            f.eor(r15, r15, r9);
          }
        }
        f.strb(r15, r7, o + row);
      }
    }
    f.la(r9, "aes_tmp");  // restore the tmp base clobbered above
    f.bind(no_mix);
    f.jmp(nextround);
    f.bind(nextround);

    f.subi(r8, r8, 1);
    f.cmpiBr(r8, 0, Cond::kGe, rloop);

    // state -> out.
    for (i32 i = 0; i < 16; ++i) {
      f.ldrb(r1, r7, i);
      f.strb(r1, r5, i);
    }
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  bool decrypt_;
  u32 input_off_ = 0;
  u32 nblocks_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeRijndaelE(u64 seed) {
  return std::make_unique<RijndaelWorkload>(seed, false);
}
std::unique_ptr<Workload> makeRijndaelD(u64 seed) {
  return std::make_unique<RijndaelWorkload>(seed, true);
}

}  // namespace wp::workloads
