#include "support/ensure.hpp"
#include "workloads/factories.hpp"
#include "workloads/workload.hpp"

namespace wp::workloads {

namespace {

struct Entry {
  const char* name;
  std::unique_ptr<Workload> (*make)(u64 seed);
};

// Figure 4 order.
constexpr Entry kSuite[] = {
    {"bitcount", makeBitcount},
    {"susan_c", makeSusanC},
    {"susan_e", makeSusanE},
    {"susan_s", makeSusanS},
    {"cjpeg", makeCjpeg},
    {"djpeg", makeDjpeg},
    {"tiff2bw", makeTiff2bw},
    {"tiff2rgba", makeTiff2rgba},
    {"tiffdither", makeTiffdither},
    {"tiffmedian", makeTiffmedian},
    {"patricia", makePatricia},
    {"ispell", makeIspell},
    {"rsynth", makeRsynth},
    {"blowfish_d", makeBlowfishD},
    {"blowfish_e", makeBlowfishE},
    {"rijndael_d", makeRijndaelD},
    {"rijndael_e", makeRijndaelE},
    {"sha", makeSha},
    {"rawcaudio", makeRawcaudio},
    {"rawdaudio", makeRawdaudio},
    {"crc", makeCrc},
    {"fft", makeFft},
    {"fft_i", makeFftInv},
};

}  // namespace

const std::vector<std::string>& suiteNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kSuite) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                       u64 experiment_seed) {
  for (const Entry& e : kSuite) {
    if (name == e.name) return e.make(experiment_seed);
  }
  throw SimError("unknown workload: " + name);
}

}  // namespace wp::workloads
