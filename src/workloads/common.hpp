// Shared helpers for workload implementations: deterministic input
// generation and typed access to guest memory buffers.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "asmkit/builder.hpp"
#include "mem/memory.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"
#include "workloads/workload.hpp"

namespace wp::workloads {

/// Guest address of a data symbol defined at @p offset.
[[nodiscard]] inline u32 guestAddr(u32 offset) {
  return mem::kDataBase + offset;
}

inline void writeWords(mem::Memory& m, u32 addr, std::span<const u32> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    m.store32(addr + static_cast<u32>(i) * 4, words[i]);
  }
}

inline void writeBytes(mem::Memory& m, u32 addr, std::span<const u8> bytes) {
  m.writeBlock(addr, bytes);
}

[[nodiscard]] inline std::vector<u32> readWords(const mem::Memory& m, u32 addr,
                                                std::size_t count) {
  std::vector<u32> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = m.load32(addr + static_cast<u32>(i) * 4);
  }
  return out;
}

[[nodiscard]] inline std::vector<u8> toBytes(std::span<const u32> words) {
  std::vector<u8> out;
  out.reserve(words.size() * 4);
  for (const u32 w : words) {
    out.push_back(static_cast<u8>(w));
    out.push_back(static_cast<u8>(w >> 8));
    out.push_back(static_cast<u8>(w >> 16));
    out.push_back(static_cast<u8>(w >> 24));
  }
  return out;
}

[[nodiscard]] inline std::vector<u8> u32ToBytes(u32 v) {
  return {static_cast<u8>(v), static_cast<u8>(v >> 8), static_cast<u8>(v >> 16),
          static_cast<u8>(v >> 24)};
}

/// Every generator below takes the experiment-wide seed as an explicit
/// trailing parameter — there is no ambient global, so two workloads
/// built with different seeds never see each other's inputs, even when
/// their prepare()/expected() calls interleave or run on different
/// threads. Each Workload instance passes its own experimentSeed()
/// through; seed 0 reproduces the historical fixed inputs bit-for-bit.
/// The host-side expected() references use the same generators, so
/// results stay verifiable under any seed.

/// Folds the experiment seed into a generator's fixed base seed (a
/// splitmix64-style mix; 0 leaves the base seed unchanged).
[[nodiscard]] constexpr u64 mixSeed(u64 base, u64 experiment_seed) {
  return base ^ (experiment_seed * 0x9e3779b97f4a7c15ULL);
}

/// Deterministic per-workload, per-input-size random bytes.
[[nodiscard]] std::vector<u8> randomBytes(const std::string& workload,
                                          InputSize size, std::size_t count,
                                          u64 experiment_seed);

/// Deterministic random words.
[[nodiscard]] std::vector<u32> randomWords(const std::string& workload,
                                           InputSize size, std::size_t count,
                                           u64 experiment_seed);

/// Deterministic pseudo-text (lowercase words separated by spaces).
[[nodiscard]] std::vector<u8> randomText(const std::string& workload,
                                         InputSize size, std::size_t count,
                                         u64 experiment_seed);

/// Deterministic 8-bit "image" with smooth gradients plus noise — gives
/// the susan/tiff/jpeg kernels realistic, compressible pixel data.
[[nodiscard]] std::vector<u8> syntheticImage(const std::string& workload,
                                             InputSize size, u32 width,
                                             u32 height, u64 experiment_seed);

/// Deterministic 16-bit PCM-like waveform for the audio codecs.
[[nodiscard]] std::vector<i16> syntheticAudio(const std::string& workload,
                                              InputSize size,
                                              std::size_t samples,
                                              u64 experiment_seed);

}  // namespace wp::workloads
