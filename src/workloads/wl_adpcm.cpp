// rawcaudio / rawdaudio — MiBench telecomm/adpcm: the Intel/DVI IMA
// ADPCM coder and decoder, bit-exact with the reference coder including
// the nibble packing order and predictor clamping.
//
// WRISC-32 has no halfword loads, so PCM samples travel as sign-extended
// 32-bit words; the 4-bit code stream is packed two codes per byte
// exactly as in the original (first code in the high nibble).
#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/references.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallSamples = 12 * 1024;
constexpr std::size_t kLargeSamples = 72 * 1024;

std::vector<i16> pcm(InputSize size, u64 seed) {
  return syntheticAudio("adpcm", size,
                        size == InputSize::kSmall ? kSmallSamples
                                                  : kLargeSamples,
                        seed);
}

std::vector<u32> stepTableWords() {
  std::vector<u32> w;
  for (const i16 v : ref::adpcmStepTable()) w.push_back(static_cast<u32>(v));
  return w;
}

std::vector<u32> indexTableWords() {
  std::vector<u32> w;
  for (const i8 v : ref::adpcmIndexTable()) {
    w.push_back(static_cast<u32>(static_cast<i32>(v)));
  }
  return w;
}

// Emits the clamp of r7 (valpred) to [-32768, 32767].
void emitClampValpred(asmkit::FunctionBuilder& f) {
  using namespace asmkit;
  const auto c1 = f.label();
  const auto c2 = f.label();
  f.movi(r0, 32767);
  f.cmpBr(r7, r0, Cond::kLe, c1);
  f.mov(r7, r0);
  f.bind(c1);
  f.movi(r0, -32768);
  f.cmpBr(r7, r0, Cond::kGe, c2);
  f.mov(r7, r0);
  f.bind(c2);
}

// Emits the clamp of r8 (index) to [0, 88].
void emitClampIndex(asmkit::FunctionBuilder& f) {
  using namespace asmkit;
  const auto i1 = f.label();
  const auto i2 = f.label();
  f.cmpiBr(r8, 0, Cond::kGe, i1);
  f.movi(r8, 0);
  f.bind(i1);
  f.cmpiBr(r8, 88, Cond::kLe, i2);
  f.movi(r8, 88);
  f.bind(i2);
}

class AdpcmWorkload : public Workload {
 public:
  AdpcmWorkload(u64 seed, bool decode) : Workload(seed), decode_(decode) {}

  std::string name() const override {
    return decode_ ? "rawdaudio" : "rawcaudio";
  }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    mb.dataWords("step_tab", stepTableWords());
    mb.dataWords("index_tab", indexTableWords());
    input_off_ = mb.bss("input", static_cast<u32>(
        decode_ ? (kLargeSamples + 1) / 2 : kLargeSamples * 4));
    nsamples_off_ = mb.bss("nsamples", 4);
    out_off_ = mb.bss("output", static_cast<u32>(
        decode_ ? kLargeSamples * 4 : (kLargeSamples + 1) / 2));

    if (decode_) {
      emitDecoder(mb);
    } else {
      emitEncoder(mb);
    }
    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto samples = pcm(size, experimentSeed());
    memory.store32(guestAddr(nsamples_off_),
                   static_cast<u32>(samples.size()));
    if (decode_) {
      writeBytes(memory, guestAddr(input_off_), ref::adpcmEncode(samples));
    } else {
      std::vector<u32> words;
      words.reserve(samples.size());
      for (const i16 s : samples) {
        words.push_back(static_cast<u32>(static_cast<i32>(s)));
      }
      writeWords(memory, guestAddr(input_off_), words);
    }
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    const std::size_t len =
        decode_ ? kLargeSamples * 4 : (kLargeSamples + 1) / 2;
    return memory.readBlock(guestAddr(out_off_), len);
  }

  std::vector<u8> expected(InputSize size) const override {
    const auto samples = pcm(size, experimentSeed());
    std::vector<u8> e;
    if (decode_) {
      const auto decoded =
          ref::adpcmDecode(ref::adpcmEncode(samples), samples.size());
      std::vector<u32> words;
      for (const i16 s : decoded) {
        words.push_back(static_cast<u32>(static_cast<i32>(s)));
      }
      e = toBytes(words);
      e.resize(kLargeSamples * 4, 0);
    } else {
      e = ref::adpcmEncode(samples);
      e.resize((kLargeSamples + 1) / 2, 0);
    }
    return e;
  }

 private:
  static void emitEncoder(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r2, "step_tab");
    f.la(r3, "index_tab");
    f.la(r4, "input");
    f.la(r0, "nsamples");
    f.ldr(r5, r0);
    f.la(r6, "output");
    f.movi(r7, 0);      // valpred
    f.movi(r8, 0);      // index
    f.ldr(r9, r2, 0);   // step
    f.movi(r10, 0);     // output buffer
    f.movi(r11, 1);     // next nibble is high

    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);
    f.ldr(r0, r4, 0);
    f.addi(r4, r4, 4);
    f.sub(r0, r0, r7);  // diff = val - valpred
    f.movi(r12, 0);     // sign
    const auto pos = f.label();
    f.cmpiBr(r0, 0, Cond::kGe, pos);
    f.movi(r12, 8);
    f.mvn(r0, r0);
    f.addi(r0, r0, 1);
    f.bind(pos);

    f.movi(r1, 0);       // delta
    f.lsri(r15, r9, 3);  // vpdiff = step >> 3
    const auto s1 = f.label();
    f.cmpBr(r0, r9, Cond::kLt, s1);
    f.orri(r1, r1, 4);
    f.sub(r0, r0, r9);
    f.add(r15, r15, r9);
    f.bind(s1);
    f.lsri(r9, r9, 1);
    const auto s2 = f.label();
    f.cmpBr(r0, r9, Cond::kLt, s2);
    f.orri(r1, r1, 2);
    f.sub(r0, r0, r9);
    f.add(r15, r15, r9);
    f.bind(s2);
    f.lsri(r9, r9, 1);
    const auto s3 = f.label();
    f.cmpBr(r0, r9, Cond::kLt, s3);
    f.orri(r1, r1, 1);
    f.add(r15, r15, r9);
    f.bind(s3);

    const auto addv = f.label();
    const auto applied = f.label();
    f.cmpiBr(r12, 0, Cond::kEq, addv);
    f.sub(r7, r7, r15);
    f.jmp(applied);
    f.bind(addv);
    f.add(r7, r7, r15);
    f.bind(applied);
    emitClampValpred(f);

    f.orr(r1, r1, r12);  // delta |= sign
    f.lsli(r0, r1, 2);
    f.ldrx(r0, r3, r0);
    f.add(r8, r8, r0);
    emitClampIndex(f);
    f.lsli(r0, r8, 2);
    f.ldrx(r9, r2, r0);  // step = table[index]

    const auto lownib = f.label();
    const auto packed = f.label();
    f.cmpiBr(r11, 0, Cond::kEq, lownib);
    f.lsli(r10, r1, 4);
    f.andi(r10, r10, 0xf0);
    f.movi(r11, 0);
    f.jmp(packed);
    f.bind(lownib);
    f.andi(r0, r1, 0x0f);
    f.orr(r0, r0, r10);
    f.strb(r0, r6, 0);
    f.addi(r6, r6, 1);
    f.movi(r11, 1);
    f.bind(packed);

    f.subi(r5, r5, 1);
    f.jmp(loop);

    f.bind(done);
    const auto noflush = f.label();
    f.cmpiBr(r11, 1, Cond::kEq, noflush);
    f.strb(r10, r6, 0);
    f.bind(noflush);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  static void emitDecoder(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r2, "step_tab");
    f.la(r3, "index_tab");
    f.la(r4, "input");
    f.la(r0, "nsamples");
    f.ldr(r5, r0);
    f.la(r6, "output");
    f.movi(r7, 0);      // valpred
    f.movi(r8, 0);      // index
    f.ldr(r9, r2, 0);   // step
    f.movi(r10, 0);     // input buffer
    f.movi(r11, 1);     // need a fresh byte (read high nibble)

    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);

    const auto low = f.label();
    const auto got = f.label();
    f.cmpiBr(r11, 0, Cond::kEq, low);
    f.ldrb(r10, r4, 0);
    f.addi(r4, r4, 1);
    f.lsri(r1, r10, 4);
    f.andi(r1, r1, 0xf);
    f.movi(r11, 0);
    f.jmp(got);
    f.bind(low);
    f.andi(r1, r10, 0xf);
    f.movi(r11, 1);
    f.bind(got);

    f.lsli(r0, r1, 2);
    f.ldrx(r0, r3, r0);
    f.add(r8, r8, r0);
    emitClampIndex(f);

    f.andi(r12, r1, 8);  // sign
    f.andi(r1, r1, 7);
    f.lsri(r15, r9, 3);  // vpdiff = step >> 3
    const auto d1 = f.label();
    f.andi(r0, r1, 4);
    f.cmpiBr(r0, 0, Cond::kEq, d1);
    f.add(r15, r15, r9);
    f.bind(d1);
    const auto d2 = f.label();
    f.andi(r0, r1, 2);
    f.cmpiBr(r0, 0, Cond::kEq, d2);
    f.lsri(r0, r9, 1);
    f.add(r15, r15, r0);
    f.bind(d2);
    const auto d3 = f.label();
    f.andi(r0, r1, 1);
    f.cmpiBr(r0, 0, Cond::kEq, d3);
    f.lsri(r0, r9, 2);
    f.add(r15, r15, r0);
    f.bind(d3);

    const auto addv = f.label();
    const auto applied = f.label();
    f.cmpiBr(r12, 0, Cond::kEq, addv);
    f.sub(r7, r7, r15);
    f.jmp(applied);
    f.bind(addv);
    f.add(r7, r7, r15);
    f.bind(applied);
    emitClampValpred(f);

    f.lsli(r0, r8, 2);
    f.ldrx(r9, r2, r0);  // step = table[index]
    f.str(r7, r6, 0);
    f.addi(r6, r6, 4);
    f.subi(r5, r5, 1);
    f.jmp(loop);

    f.bind(done);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  bool decode_;
  u32 input_off_ = 0;
  u32 nsamples_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeRawcaudio(u64 seed) {
  return std::make_unique<AdpcmWorkload>(seed, false);
}
std::unique_ptr<Workload> makeRawdaudio(u64 seed) {
  return std::make_unique<AdpcmWorkload>(seed, true);
}

}  // namespace wp::workloads
