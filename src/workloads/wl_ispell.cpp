// ispell — MiBench office/ispell: spell checking against a sorted
// dictionary. Each text word is binary-searched (12-byte fixed slots,
// byte-wise compare); on a miss the checker strips the common suffixes
// "s", "ed", "ing", "ly" and retries — the original's affix-stripping
// control flow in miniature. String compares dominate, as in ispell.
#include <algorithm>
#include <set>
#include <string>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

constexpr u32 kSlot = 12;  // max 11 chars + NUL

struct Sizes {
  std::size_t dict_words, text_words;
};

Sizes sizesFor(InputSize s) {
  return s == InputSize::kSmall ? Sizes{512, 1500} : Sizes{4096, 8000};
}

const char* const kSuffixes[4] = {"s", "ed", "ing", "ly"};

std::string randomWord(Rng& rng, std::size_t min_len, std::size_t max_len) {
  const std::size_t len = min_len + rng.below(max_len - min_len + 1);
  std::string w(len, 'a');
  for (auto& c : w) c = static_cast<char>('a' + rng.below(26));
  return w;
}

std::vector<std::string> dictionary(InputSize s, u64 seed) {
  const Sizes z = sizesFor(s);
  Rng rng(mixSeed(s == InputSize::kSmall ? 0xd1c7ULL : 0xd1c8ULL, seed));
  std::set<std::string> words;
  while (words.size() < z.dict_words) {
    words.insert(randomWord(rng, 3, 8));
  }
  return {words.begin(), words.end()};  // sorted by construction
}

std::vector<std::string> text(InputSize s, u64 seed) {
  const Sizes z = sizesFor(s);
  const auto dict = dictionary(s, seed);
  Rng rng(mixSeed(s == InputSize::kSmall ? 0x7e47aULL : 0x7e47bULL, seed));
  std::vector<std::string> out;
  out.reserve(z.text_words);
  for (std::size_t i = 0; i < z.text_words; ++i) {
    if (rng.chance(0.6)) {
      std::string w = dict[rng.below(dict.size())];
      if (rng.chance(0.4)) w += kSuffixes[rng.below(4)];
      if (w.size() > kSlot - 1) w.resize(kSlot - 1);
      out.push_back(std::move(w));
    } else {
      out.push_back(randomWord(rng, 3, 10));
    }
  }
  return out;
}

std::vector<u8> packSlots(const std::vector<std::string>& words) {
  std::vector<u8> out(words.size() * kSlot, 0);
  for (std::size_t i = 0; i < words.size(); ++i) {
    for (std::size_t c = 0; c < words[i].size(); ++c) {
      out[i * kSlot + c] = static_cast<u8>(words[i][c]);
    }
  }
  return out;
}

// Host reference mirroring the guest: binary search over the packed
// slots, then suffix strip and retry.
std::pair<u32, u32> refCheck(InputSize s, u64 seed) {
  const auto dict = dictionary(s, seed);
  const auto words = text(s, seed);
  u32 found = 0, idx_sum = 0;
  const auto lookup = [&dict](const std::string& w) -> i32 {
    const auto it = std::lower_bound(dict.begin(), dict.end(), w);
    if (it != dict.end() && *it == w) {
      return static_cast<i32>(it - dict.begin());
    }
    return -1;
  };
  for (const std::string& w : words) {
    i32 idx = lookup(w);
    if (idx < 0) {
      for (const char* suf : kSuffixes) {
        const std::size_t sl = std::string(suf).size();
        if (w.size() > sl && w.compare(w.size() - sl, sl, suf) == 0) {
          idx = lookup(w.substr(0, w.size() - sl));
          if (idx >= 0) break;
        }
      }
    }
    if (idx >= 0) {
      ++found;
      idx_sum += static_cast<u32>(idx);
    }
  }
  return {found, idx_sum};
}

class IspellWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "ispell"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    const Sizes z = sizesFor(InputSize::kLarge);
    dict_off_ = mb.bss("dict", static_cast<u32>(z.dict_words * kSlot));
    dictn_off_ = mb.bss("dict_n", 4);
    text_off_ = mb.bss("text", static_cast<u32>(z.text_words * kSlot));
    textn_off_ = mb.bss("text_n", 4);
    out_off_ = mb.bss("results", 8);
    mb.bss("wordbuf", kSlot);

    // Suffix table: 4 entries of [len, c0, c1, c2].
    std::vector<u8> suf;
    for (const char* sfx : kSuffixes) {
      const std::string s(sfx);
      suf.push_back(static_cast<u8>(s.size()));
      for (std::size_t i = 0; i < 3; ++i) {
        suf.push_back(i < s.size() ? static_cast<u8>(s[i]) : 0);
      }
    }
    mb.data("suffixes", suf);

    emitWcmp(mb);
    emitLookup(mb);
    emitMain(mb);
    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto dict = dictionary(size, experimentSeed());
    const auto words = text(size, experimentSeed());
    writeBytes(memory, guestAddr(dict_off_), packSlots(dict));
    memory.store32(guestAddr(dictn_off_), static_cast<u32>(dict.size()));
    writeBytes(memory, guestAddr(text_off_), packSlots(words));
    memory.store32(guestAddr(textn_off_), static_cast<u32>(words.size()));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), 8);
  }

  std::vector<u8> expected(InputSize size) const override {
    const auto [found, sum] = refCheck(size, experimentSeed());
    std::vector<u32> out = {found, sum};
    return toBytes(out);
  }

 private:
  // wcmp(r0 = a, r1 = b) -> r0 = -1 / 0 / 1 over 12-byte slots.
  static void emitWcmp(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("wcmp");
    f.movi(r2, 0);
    const auto loop = f.label();
    const auto diff = f.label();
    const auto equal = f.label();
    f.bind(loop);
    f.ldrbx(r3, r0, r2);
    f.ldrbx(r12, r1, r2);
    f.cmpBr(r3, r12, Cond::kNe, diff);
    f.addi(r2, r2, 1);
    f.cmpiBr(r2, kSlot, Cond::kLt, loop);
    f.bind(equal);
    f.movi(r0, 0);
    f.ret();
    f.bind(diff);
    const auto lower = f.label();
    f.cmpBr(r3, r12, Cond::kLtu, lower);
    f.movi(r0, 1);
    f.ret();
    f.bind(lower);
    f.movi(r0, -1);
    f.ret();
  }

  // dict_lookup(r0 = word) -> r0 = index or -1. Binary search.
  static void emitLookup(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("dict_lookup");
    f.prologue({r4, r5, r6, r7, r8});
    f.mov(r4, r0);       // word
    f.la(r5, "dict");
    f.la(r0, "dict_n");
    f.ldr(r6, r0);       // hi = n (exclusive)
    f.movi(r7, 0);       // lo
    const auto loop = f.label();
    const auto miss = f.label();
    const auto below = f.label();
    const auto above = f.label();
    f.bind(loop);
    f.cmpBr(r7, r6, Cond::kGe, miss);
    f.add(r8, r7, r6);
    f.lsri(r8, r8, 1);   // mid
    f.muli(r0, r8, kSlot);
    f.add(r1, r5, r0);   // &dict[mid]
    f.mov(r0, r4);
    f.call("wcmp");
    f.cmpiBr(r0, 0, Cond::kLt, below);
    f.cmpiBr(r0, 0, Cond::kGt, above);
    f.mov(r0, r8);       // hit: return mid
    f.epilogue({r4, r5, r6, r7, r8});
    f.bind(below);
    f.mov(r6, r8);       // hi = mid
    f.jmp(loop);
    f.bind(above);
    f.addi(r7, r8, 1);   // lo = mid + 1
    f.jmp(loop);
    f.bind(miss);
    f.movi(r0, -1);
    f.epilogue({r4, r5, r6, r7, r8});
  }

  static void emitMain(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r4, "text");
    f.la(r0, "text_n");
    f.ldr(r5, r0);
    f.movi(r6, 0);  // found
    f.movi(r7, 0);  // index sum

    const auto wloop = f.label();
    const auto wdone = f.label();
    const auto record = f.label();
    const auto nextword = f.label();
    f.bind(wloop);
    f.cmpiBr(r5, 0, Cond::kEq, wdone);
    f.mov(r0, r4);
    f.call("dict_lookup");
    f.cmpiBr(r0, 0, Cond::kGe, record);

    // Miss: compute word length into r8.
    f.movi(r8, 0);
    const auto ll = f.label();
    const auto ldone = f.label();
    f.bind(ll);
    f.ldrbx(r1, r4, r8);
    f.cmpiBr(r1, 0, Cond::kEq, ldone);
    f.addi(r8, r8, 1);
    f.cmpiBr(r8, kSlot, Cond::kLt, ll);
    f.bind(ldone);

    // Try each suffix.
    f.la(r9, "suffixes");
    f.movi(r10, 0);  // suffix idx
    const auto sloop = f.label();
    const auto sdone = f.label();
    const auto snext = f.label();
    f.bind(sloop);
    f.cmpiBr(r10, 4, Cond::kGe, sdone);
    f.lsli(r11, r10, 2);
    f.ldrbx(r1, r9, r11);  // suffix length
    f.cmpBr(r8, r1, Cond::kLe, snext);  // need wordlen > suflen
    // Tail compare: word[len-sl+i] == suffix[i] for i < sl.
    f.sub(r2, r8, r1);     // stem length
    f.movi(r3, 0);         // i
    const auto tl = f.label();
    const auto tmatch = f.label();
    f.bind(tl);
    f.cmpBr(r3, r1, Cond::kGe, tmatch);
    f.add(r0, r2, r3);
    f.ldrbx(r12, r4, r0);
    f.addi(r0, r11, 1);
    f.add(r0, r0, r3);
    f.ldrbx(r15, r9, r0);
    f.cmpBr(r12, r15, Cond::kNe, snext);
    f.addi(r3, r3, 1);
    f.jmp(tl);
    f.bind(tmatch);
    // Copy stem into wordbuf (NUL-padded) and look it up.
    f.la(r0, "wordbuf");
    f.movi(r3, 0);
    const auto cp = f.label();
    const auto cpdone = f.label();
    f.bind(cp);
    f.cmpiBr(r3, kSlot, Cond::kGe, cpdone);
    const auto pad = f.label();
    const auto stored = f.label();
    f.cmpBr(r3, r2, Cond::kGe, pad);
    f.ldrbx(r12, r4, r3);
    f.jmp(stored);
    f.bind(pad);
    f.movi(r12, 0);
    f.bind(stored);
    f.strbx(r12, r0, r3);
    f.addi(r3, r3, 1);
    f.jmp(cp);
    f.bind(cpdone);
    f.call("dict_lookup");
    f.cmpiBr(r0, 0, Cond::kGe, record);
    f.bind(snext);
    f.addi(r10, r10, 1);
    f.jmp(sloop);
    f.bind(sdone);
    f.jmp(nextword);

    f.bind(record);
    f.addi(r6, r6, 1);
    f.add(r7, r7, r0);
    f.bind(nextword);
    f.addi(r4, r4, kSlot);
    f.subi(r5, r5, 1);
    f.jmp(wloop);

    f.bind(wdone);
    f.la(r0, "results");
    f.str(r6, r0, 0);
    f.str(r7, r0, 4);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  u32 dict_off_ = 0;
  u32 dictn_off_ = 0;
  u32 text_off_ = 0;
  u32 textn_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeIspell(u64 seed) {
  return std::make_unique<IspellWorkload>(seed);
}

}  // namespace wp::workloads
