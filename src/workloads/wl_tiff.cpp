// tiff2bw / tiff2rgba / tiffdither / tiffmedian — MiBench consumer/tiff:
// four raster transforms over synthetic images.
//   tiff2bw:    RGB -> luminance, (77R + 150G + 29B) >> 8
//   tiff2rgba:  palette indices -> RGBA words via a 256-entry palette
//   tiffdither: grayscale -> 1-bit Floyd-Steinberg error diffusion
//   tiffmedian: RGB -> 8-colour quantized indices (3-3-2 histogram,
//               popularity palette, nearest-colour mapping) — a compact
//               stand-in for median-cut with the same hot loops
//               (histogram build, repeated bin scans, per-pixel distance
//               minimization). Recorded as a substitution in DESIGN.md.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

enum class Variant { kBw, kRgba, kDither, kMedian };

struct Dims {
  u32 w, h;
};

Dims dimsFor(Variant v, InputSize s) {
  const bool small = s == InputSize::kSmall;
  switch (v) {
    case Variant::kBw:     return small ? Dims{96, 72} : Dims{320, 240};
    case Variant::kRgba:   return small ? Dims{96, 72} : Dims{320, 240};
    case Variant::kDither: return small ? Dims{96, 72} : Dims{256, 192};
    case Variant::kMedian: return small ? Dims{64, 48} : Dims{160, 120};
  }
  WP_UNREACHABLE("bad variant");
}

constexpr u32 kMaxPixels = 320 * 240;
constexpr int kPaletteColors = 8;

const char* variantName(Variant v) {
  switch (v) {
    case Variant::kBw:     return "tiff2bw";
    case Variant::kRgba:   return "tiff2rgba";
    case Variant::kDither: return "tiffdither";
    case Variant::kMedian: return "tiffmedian";
  }
  WP_UNREACHABLE("bad variant");
}

std::vector<u8> rgbImage(Variant v, InputSize s, u64 seed) {
  const Dims d = dimsFor(v, s);
  const std::string base = variantName(v);
  const auto r = syntheticImage(base + "-r", s, d.w, d.h, seed);
  const auto g = syntheticImage(base + "-g", s, d.w, d.h, seed);
  const auto b = syntheticImage(base + "-b", s, d.w, d.h, seed);
  std::vector<u8> out;
  out.reserve(r.size() * 3);
  for (std::size_t i = 0; i < r.size(); ++i) {
    out.push_back(r[i]);
    out.push_back(g[i]);
    out.push_back(b[i]);
  }
  return out;
}

std::vector<u8> grayImage(Variant v, InputSize s, u64 seed) {
  const Dims d = dimsFor(v, s);
  return syntheticImage(variantName(v), s, d.w, d.h, seed);
}

std::vector<u32> rgbaPalette(u64 seed) {
  const auto bytes = randomBytes("tiff2rgba-palette", InputSize::kSmall,
                                 256 * 4, seed);
  std::vector<u32> pal(256);
  for (u32 i = 0; i < 256; ++i) {
    pal[i] = static_cast<u32>(bytes[i * 4]) |
             (static_cast<u32>(bytes[i * 4 + 1]) << 8) |
             (static_cast<u32>(bytes[i * 4 + 2]) << 16) |
             (static_cast<u32>(bytes[i * 4 + 3]) << 24);
  }
  return pal;
}

// ---------------------------------------------------------------------------
// Host references
// ---------------------------------------------------------------------------

std::vector<u8> refBw(InputSize s, u64 seed) {
  const auto rgb = rgbImage(Variant::kBw, s, seed);
  std::vector<u8> out(rgb.size() / 3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<u8>(
        (77u * rgb[i * 3] + 150u * rgb[i * 3 + 1] + 29u * rgb[i * 3 + 2]) >>
        8);
  }
  return out;
}

std::vector<u8> refRgba(InputSize s, u64 seed) {
  const auto idx = grayImage(Variant::kRgba, s, seed);
  const auto pal = rgbaPalette(seed);
  std::vector<u32> out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) out[i] = pal[idx[i]];
  return toBytes(out);
}

std::vector<u8> refDither(InputSize s, u64 seed) {
  const Dims d = dimsFor(Variant::kDither, s);
  const auto img = grayImage(Variant::kDither, s, seed);
  std::vector<u8> out(img.size());
  std::vector<i32> cur(d.w + 2, 0), next(d.w + 2, 0);
  for (u32 y = 0; y < d.h; ++y) {
    for (u32 x = 0; x < d.w; ++x) {
      const i32 v = img[y * d.w + x] + cur[x + 1];
      const i32 o = v >= 128 ? 255 : 0;
      out[y * d.w + x] = static_cast<u8>(o);
      const i32 err = v - o;
      cur[x + 2] += (err * 7) >> 4;
      next[x] += (err * 3) >> 4;
      next[x + 1] += (err * 5) >> 4;
      next[x + 2] += (err * 1) >> 4;
    }
    cur.swap(next);
    std::fill(next.begin(), next.end(), 0);
  }
  return out;
}

struct MedianResult {
  std::vector<u8> palette;  // kPaletteColors * 3 bytes
  std::vector<u8> indices;
};

MedianResult refMedian(InputSize s, u64 seed) {
  const auto rgb = rgbImage(Variant::kMedian, s, seed);
  const std::size_t npix = rgb.size() / 3;

  std::vector<u32> hist(256, 0);
  for (std::size_t i = 0; i < npix; ++i) {
    const u32 bin = ((rgb[i * 3] >> 5) << 5) | ((rgb[i * 3 + 1] >> 5) << 2) |
                    (rgb[i * 3 + 2] >> 6);
    ++hist[bin];
  }

  MedianResult res;
  res.palette.resize(kPaletteColors * 3);
  for (int k = 0; k < kPaletteColors; ++k) {
    u32 best = 0, best_count = hist[0];
    for (u32 b = 1; b < 256; ++b) {
      if (hist[b] > best_count) {
        best_count = hist[b];
        best = b;
      }
    }
    hist[best] = 0;
    res.palette[k * 3] = static_cast<u8>(((best >> 5) << 5) | 16);
    res.palette[k * 3 + 1] = static_cast<u8>((((best >> 2) & 7) << 5) | 16);
    res.palette[k * 3 + 2] = static_cast<u8>(((best & 3) << 6) | 32);
  }

  res.indices.resize(npix);
  for (std::size_t i = 0; i < npix; ++i) {
    i32 best_d = 0x7fffffff;
    u8 best_k = 0;
    for (int k = 0; k < kPaletteColors; ++k) {
      const i32 dr = rgb[i * 3] - res.palette[k * 3];
      const i32 dg = rgb[i * 3 + 1] - res.palette[k * 3 + 1];
      const i32 db = rgb[i * 3 + 2] - res.palette[k * 3 + 2];
      const i32 dist = dr * dr + dg * dg + db * db;
      if (dist < best_d) {
        best_d = dist;
        best_k = static_cast<u8>(k);
      }
    }
    res.indices[i] = best_k;
  }
  return res;
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

class TiffWorkload : public Workload {
 public:
  TiffWorkload(u64 seed, Variant v) : Workload(seed), variant_(v) {}

  std::string name() const override { return variantName(variant_); }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    switch (variant_) {
      case Variant::kBw:     buildBw(mb); break;
      case Variant::kRgba:   buildRgba(mb); break;
      case Variant::kDither: buildDither(mb); break;
      case Variant::kMedian: buildMedian(mb); break;
    }
    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const Dims d = dimsFor(variant_, size);
    memory.store32(guestAddr(w_off_), d.w);
    memory.store32(guestAddr(h_off_), d.h);
    memory.store32(guestAddr(npix_off_), d.w * d.h);
    if (variant_ == Variant::kBw || variant_ == Variant::kMedian) {
      writeBytes(memory, guestAddr(in_off_),
                 rgbImage(variant_, size, experimentSeed()));
    } else {
      writeBytes(memory, guestAddr(in_off_),
                 grayImage(variant_, size, experimentSeed()));
    }
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    switch (variant_) {
      case Variant::kBw:
        return memory.readBlock(guestAddr(out_off_), kMaxPixels);
      case Variant::kRgba:
        return memory.readBlock(guestAddr(out_off_), kMaxPixels * 4);
      case Variant::kDither:
        return memory.readBlock(guestAddr(out_off_), kMaxPixels);
      case Variant::kMedian: {
        auto out = memory.readBlock(guestAddr(pal_off_), kPaletteColors * 3);
        const auto idx = memory.readBlock(guestAddr(out_off_), kMaxPixels);
        out.insert(out.end(), idx.begin(), idx.end());
        return out;
      }
    }
    WP_UNREACHABLE("bad variant");
  }

  std::vector<u8> expected(InputSize size) const override {
    switch (variant_) {
      case Variant::kBw: {
        auto e = refBw(size, experimentSeed());
        e.resize(kMaxPixels, 0);
        return e;
      }
      case Variant::kRgba: {
        auto e = refRgba(size, experimentSeed());
        e.resize(kMaxPixels * 4, 0);
        return e;
      }
      case Variant::kDither: {
        auto e = refDither(size, experimentSeed());
        e.resize(kMaxPixels, 0);
        return e;
      }
      case Variant::kMedian: {
        const MedianResult r = refMedian(size, experimentSeed());
        std::vector<u8> e = r.palette;
        std::vector<u8> idx = r.indices;
        idx.resize(kMaxPixels, 0);
        e.insert(e.end(), idx.begin(), idx.end());
        return e;
      }
    }
    WP_UNREACHABLE("bad variant");
  }

 private:
  void commonSymbols(asmkit::ModuleBuilder& mb, u32 in_bytes, u32 out_bytes) {
    in_off_ = mb.bss("input", in_bytes);
    out_off_ = mb.bss("output", out_bytes);
    w_off_ = mb.bss("width", 4);
    h_off_ = mb.bss("height", 4);
    npix_off_ = mb.bss("npixels", 4);
  }

  void buildBw(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    commonSymbols(mb, kMaxPixels * 3, kMaxPixels);
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6});
    f.la(r4, "input");
    f.la(r5, "output");
    f.la(r0, "npixels");
    f.ldr(r6, r0);
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r6, 0, Cond::kEq, done);
    f.ldrb(r0, r4, 0);
    f.ldrb(r1, r4, 1);
    f.ldrb(r2, r4, 2);
    f.muli(r0, r0, 77);
    f.muli(r1, r1, 150);
    f.muli(r2, r2, 29);
    f.add(r0, r0, r1);
    f.add(r0, r0, r2);
    f.lsri(r0, r0, 8);
    f.strb(r0, r5, 0);
    f.addi(r4, r4, 3);
    f.addi(r5, r5, 1);
    f.subi(r6, r6, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5, r6});
  }

  void buildRgba(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    mb.dataWords("palette", rgbaPalette(experimentSeed()));
    commonSymbols(mb, kMaxPixels, kMaxPixels * 4);
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7});
    f.la(r4, "input");
    f.la(r5, "output");
    f.la(r0, "npixels");
    f.ldr(r6, r0);
    f.la(r7, "palette");
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r6, 0, Cond::kEq, done);
    f.ldrb(r0, r4, 0);
    f.lsli(r0, r0, 2);
    f.ldrx(r1, r7, r0);
    f.str(r1, r5, 0);
    f.addi(r4, r4, 1);
    f.addi(r5, r5, 4);
    f.subi(r6, r6, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5, r6, r7});
  }

  void buildDither(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    commonSymbols(mb, kMaxPixels, kMaxPixels);
    mb.bss("err_a", (320 + 2) * 4);
    mb.bss("err_b", (320 + 2) * 4);
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r4, "input");
    f.la(r5, "output");
    f.la(r0, "width");
    f.ldr(r6, r0);
    f.la(r0, "height");
    f.ldr(r7, r0);
    f.la(r10, "err_a");  // current row errors (x+1 offset)
    f.la(r11, "err_b");  // next row errors

    f.movi(r8, 0);  // y
    const auto yloop = f.label();
    const auto ydone = f.label();
    f.bind(yloop);
    f.cmpBr(r8, r7, Cond::kGe, ydone);
    f.movi(r9, 0);  // x
    const auto xloop = f.label();
    const auto xdone = f.label();
    f.bind(xloop);
    f.cmpBr(r9, r6, Cond::kGe, xdone);

    // v = img[y*w+x] + cur[x+1]
    f.mul(r0, r8, r6);
    f.add(r0, r0, r9);
    f.ldrbx(r1, r4, r0);
    f.addi(r2, r9, 1);
    f.lsli(r2, r2, 2);
    f.ldrx(r3, r10, r2);
    f.add(r1, r1, r3);
    // out = v >= 128 ? 255 : 0
    const auto white = f.label();
    const auto stored = f.label();
    f.movi(r12, 0);
    f.cmpiBr(r1, 128, Cond::kGe, white);
    f.jmp(stored);
    f.bind(white);
    f.movi(r12, 255);
    f.bind(stored);
    f.strbx(r12, r5, r0);
    f.sub(r1, r1, r12);  // err
    // cur[x+2] += (err*7)>>4
    f.muli(r0, r1, 7);
    f.asri(r0, r0, 4);
    f.addi(r2, r9, 2);
    f.lsli(r2, r2, 2);
    f.ldrx(r3, r10, r2);
    f.add(r3, r3, r0);
    f.strx(r3, r10, r2);
    // next[x] += (err*3)>>4
    f.muli(r0, r1, 3);
    f.asri(r0, r0, 4);
    f.lsli(r2, r9, 2);
    f.ldrx(r3, r11, r2);
    f.add(r3, r3, r0);
    f.strx(r3, r11, r2);
    // next[x+1] += (err*5)>>4
    f.muli(r0, r1, 5);
    f.asri(r0, r0, 4);
    f.addi(r2, r9, 1);
    f.lsli(r2, r2, 2);
    f.ldrx(r3, r11, r2);
    f.add(r3, r3, r0);
    f.strx(r3, r11, r2);
    // next[x+2] += err>>4
    f.asri(r0, r1, 4);
    f.addi(r2, r9, 2);
    f.lsli(r2, r2, 2);
    f.ldrx(r3, r11, r2);
    f.add(r3, r3, r0);
    f.strx(r3, r11, r2);

    f.addi(r9, r9, 1);
    f.jmp(xloop);
    f.bind(xdone);
    // swap cur/next, clear next.
    f.mov(r0, r10);
    f.mov(r10, r11);
    f.mov(r11, r0);
    f.addi(r1, r6, 2);
    f.lsli(r1, r1, 2);
    f.movi(r0, 0);
    f.movi(r2, 0);
    const auto clr = f.label();
    f.bind(clr);
    f.strx(r0, r11, r2);
    f.addi(r2, r2, 4);
    f.cmpBr(r2, r1, Cond::kLt, clr);
    f.addi(r8, r8, 1);
    f.jmp(yloop);
    f.bind(ydone);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  void buildMedian(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    commonSymbols(mb, kMaxPixels * 3, kMaxPixels);
    mb.bss("hist", 256 * 4);
    pal_off_ = mb.bss("med_palette", kPaletteColors * 3);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r4, "input");
    f.la(r0, "npixels");
    f.ldr(r6, r0);
    f.la(r7, "hist");

    // Phase 1: 3-3-2 histogram.
    f.movi(r5, 0);  // pixel counter
    const auto h_loop = f.label();
    const auto h_done = f.label();
    f.bind(h_loop);
    f.cmpBr(r5, r6, Cond::kGe, h_done);
    f.muli(r0, r5, 3);
    f.ldrbx(r1, r4, r0);      // r
    f.addi(r0, r0, 1);
    f.ldrbx(r2, r4, r0);      // g
    f.addi(r0, r0, 1);
    f.ldrbx(r3, r4, r0);      // b
    f.lsri(r1, r1, 5);
    f.lsli(r1, r1, 5);
    f.lsri(r2, r2, 5);
    f.lsli(r2, r2, 2);
    f.orr(r1, r1, r2);
    f.lsri(r3, r3, 6);
    f.orr(r1, r1, r3);        // bin
    f.lsli(r1, r1, 2);
    f.ldrx(r0, r7, r1);
    f.addi(r0, r0, 1);
    f.strx(r0, r7, r1);
    f.addi(r5, r5, 1);
    f.jmp(h_loop);
    f.bind(h_done);

    // Phase 2: popularity palette (8 repeated max-scans).
    f.la(r8, "med_palette");
    f.movi(r9, 0);  // k
    const auto k_loop = f.label();
    const auto k_done = f.label();
    f.bind(k_loop);
    f.cmpiBr(r9, kPaletteColors, Cond::kGe, k_done);
    f.movi(r10, 0);           // best bin
    f.ldr(r11, r7, 0);        // best count
    f.movi(r5, 1);            // bin
    const auto scan = f.label();
    const auto scan_done = f.label();
    const auto not_better = f.label();
    f.bind(scan);
    f.cmpiBr(r5, 256, Cond::kGe, scan_done);
    f.lsli(r0, r5, 2);
    f.ldrx(r1, r7, r0);
    f.cmpBr(r1, r11, Cond::kLe, not_better);
    f.mov(r11, r1);
    f.mov(r10, r5);
    f.bind(not_better);
    f.addi(r5, r5, 1);
    f.jmp(scan);
    f.bind(scan_done);
    // hist[best] = 0.
    f.lsli(r0, r10, 2);
    f.movi(r1, 0);
    f.strx(r1, r7, r0);
    // palette bytes = bin centres.
    f.muli(r3, r9, 3);
    f.lsri(r0, r10, 5);
    f.lsli(r0, r0, 5);
    f.orri(r0, r0, 16);
    f.strbx(r0, r8, r3);
    f.lsri(r0, r10, 2);
    f.andi(r0, r0, 7);
    f.lsli(r0, r0, 5);
    f.orri(r0, r0, 16);
    f.addi(r3, r3, 1);
    f.strbx(r0, r8, r3);
    f.andi(r0, r10, 3);
    f.lsli(r0, r0, 6);
    f.orri(r0, r0, 32);
    f.addi(r3, r3, 1);
    f.strbx(r0, r8, r3);
    f.addi(r9, r9, 1);
    f.jmp(k_loop);
    f.bind(k_done);

    // Phase 3: nearest-palette mapping.
    f.la(r5, "output");
    f.movi(r9, 0);  // pixel index
    const auto m_loop = f.label();
    const auto m_done = f.label();
    f.bind(m_loop);
    f.cmpBr(r9, r6, Cond::kGe, m_done);
    f.muli(r0, r9, 3);
    f.add(r10, r4, r0);       // &rgb[pixel]
    f.movi32(r11, 0x7fffffff);  // best distance
    f.movi(r7, 0);            // best k (r7 reused after histogram)
    // Unrolled nearest-palette scan: palette offsets are immediates.
    for (i32 k = 0; k < kPaletteColors; ++k) {
      const auto not_closer = f.label();
      // dr
      f.ldrb(r0, r10, 0);
      f.ldrb(r2, r8, 3 * k);
      f.sub(r0, r0, r2);
      f.mul(r0, r0, r0);
      f.mov(r3, r0);
      // dg
      f.ldrb(r0, r10, 1);
      f.ldrb(r2, r8, 3 * k + 1);
      f.sub(r0, r0, r2);
      f.mul(r0, r0, r0);
      f.add(r3, r3, r0);
      // db
      f.ldrb(r0, r10, 2);
      f.ldrb(r2, r8, 3 * k + 2);
      f.sub(r0, r0, r2);
      f.mul(r0, r0, r0);
      f.add(r3, r3, r0);
      f.cmpBr(r3, r11, Cond::kGe, not_closer);
      f.mov(r11, r3);
      f.movi(r7, k);
      f.bind(not_closer);
    }
    f.strbx(r7, r5, r9);
    f.addi(r9, r9, 1);
    f.jmp(m_loop);
    f.bind(m_done);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  Variant variant_;
  u32 in_off_ = 0;
  u32 out_off_ = 0;
  u32 pal_off_ = 0;
  u32 w_off_ = 0;
  u32 h_off_ = 0;
  u32 npix_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeTiff2bw(u64 seed) {
  return std::make_unique<TiffWorkload>(seed, Variant::kBw);
}
std::unique_ptr<Workload> makeTiff2rgba(u64 seed) {
  return std::make_unique<TiffWorkload>(seed, Variant::kRgba);
}
std::unique_ptr<Workload> makeTiffdither(u64 seed) {
  return std::make_unique<TiffWorkload>(seed, Variant::kDither);
}
std::unique_ptr<Workload> makeTiffmedian(u64 seed) {
  return std::make_unique<TiffWorkload>(seed, Variant::kMedian);
}

}  // namespace wp::workloads
