// sha — MiBench security/sha: SHA-1 over a byte stream. The guest
// processes standard 64-byte blocks (padding is applied host-side when
// the input is written, as the original benchmark's driver does its own
// buffering); all 80 rounds, the message schedule and the four round
// functions run on the simulated core.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/references.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallLen = 6 * 1024;
constexpr std::size_t kLargeLen = 56 * 1024;

class ShaWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "sha"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    const std::size_t max_padded = kLargeLen + 72;
    input_off_ = mb.bss("input", static_cast<u32>(max_padded));
    nblocks_off_ = mb.bss("num_blocks", 4);
    hstate_off_ = mb.bss("hstate", 20);
    mb.bss("wbuf", 320);

    buildShaBlock(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5});
    // Initialize H.
    f.la(r1, "hstate");
    f.movi32(r0, 0x67452301u);
    f.str(r0, r1, 0);
    f.movi32(r0, 0xEFCDAB89u);
    f.str(r0, r1, 4);
    f.movi32(r0, 0x98BADCFEu);
    f.str(r0, r1, 8);
    f.movi32(r0, 0x10325476u);
    f.str(r0, r1, 12);
    f.movi32(r0, 0xC3D2E1F0u);
    f.str(r0, r1, 16);

    f.la(r4, "input");
    f.la(r0, "num_blocks");
    f.ldr(r5, r0);

    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);
    f.mov(r0, r4);
    f.call("sha_block");
    f.addi(r4, r4, 64);
    f.subi(r5, r5, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto padded = ref::sha1Pad(message(size, experimentSeed()));
    writeBytes(memory, guestAddr(input_off_), padded);
    memory.store32(guestAddr(nblocks_off_),
                   static_cast<u32>(padded.size() / 64));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(hstate_off_), 20);
  }

  std::vector<u8> expected(InputSize size) const override {
    const auto h = ref::sha1(message(size, experimentSeed()));
    return toBytes(std::span<const u32>(h.data(), h.size()));
  }

 private:
  static std::vector<u8> message(InputSize size, u64 seed) {
    return randomBytes("sha", size,
                       size == InputSize::kSmall ? kSmallLen : kLargeLen,
                       seed);
  }

  // sha_block(r0 = 64-byte block): one SHA-1 compression.
  static void buildShaBlock(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("sha_block");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.mov(r4, r0);        // block pointer
    f.la(r5, "wbuf");

    // W[0..15]: big-endian words from the block.
    {
      const auto loop = f.label();
      f.movi(r6, 0);      // byte index 0..63
      f.bind(loop);
      f.ldrbx(r0, r4, r6);      // b0
      f.lsli(r0, r0, 8);
      f.addi(r7, r6, 1);
      f.ldrbx(r1, r4, r7);      // b1
      f.orr(r0, r0, r1);
      f.lsli(r0, r0, 8);
      f.addi(r7, r6, 2);
      f.ldrbx(r1, r4, r7);      // b2
      f.orr(r0, r0, r1);
      f.lsli(r0, r0, 8);
      f.addi(r7, r6, 3);
      f.ldrbx(r1, r4, r7);      // b3
      f.orr(r0, r0, r1);
      f.strx(r0, r5, r6);       // wbuf[i/4] (byte offset == i)
      f.addi(r6, r6, 4);
      f.cmpiBr(r6, 64, Cond::kLt, loop);
    }

    // W[16..79]: rol1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]).
    {
      const auto loop = f.label();
      f.movi(r6, 64);           // byte offset of W[t]
      f.bind(loop);
      f.subi(r7, r6, 12);
      f.ldrx(r0, r5, r7);
      f.subi(r7, r6, 32);
      f.ldrx(r1, r5, r7);
      f.eor(r0, r0, r1);
      f.subi(r7, r6, 56);
      f.ldrx(r1, r5, r7);
      f.eor(r0, r0, r1);
      f.subi(r7, r6, 64);
      f.ldrx(r1, r5, r7);
      f.eor(r0, r0, r1);
      f.lsli(r1, r0, 1);        // rol1
      f.lsri(r0, r0, 31);
      f.orr(r0, r0, r1);
      f.strx(r0, r5, r6);
      f.addi(r6, r6, 4);
      f.cmpiBr(r6, 320, Cond::kLt, loop);
    }

    // Working variables: a r0, b r1, c r2, d r3, e r7.
    f.la(r8, "hstate");
    f.ldr(r0, r8, 0);
    f.ldr(r1, r8, 4);
    f.ldr(r2, r8, 8);
    f.ldr(r3, r8, 12);
    f.ldr(r7, r8, 16);

    // All 80 rounds fully unrolled with immediate W offsets — the shape
    // production SHA-1 code (OpenSSL, MiBench's sha on ARM at -O2)
    // actually has, and what gives the kernel its multi-KB hot region.
    const auto emitRound = [&f](i32 t, auto emitF) {
      using namespace asmkit;
      emitF();                 // r10 = f(b,c,d), may clobber r11/r12
      f.lsli(r11, r0, 5);      // rol5(a)
      f.lsri(r12, r0, 27);
      f.orr(r11, r11, r12);
      f.add(r10, r10, r11);
      f.add(r10, r10, r7);     // + e
      f.add(r10, r10, r9);     // + K
      f.ldr(r11, r5, t * 4);   // + W[t]
      f.add(r10, r10, r11);
      f.mov(r7, r3);           // e = d
      f.mov(r3, r2);           // d = c
      f.lsli(r11, r1, 30);     // c = rol30(b)
      f.lsri(r12, r1, 2);
      f.orr(r2, r11, r12);
      f.mov(r1, r0);           // b = a
      f.mov(r0, r10);          // a = temp
    };

    const auto f1 = [&f] {  // (b & c) | (~b & d)
      using namespace asmkit;
      f.and_(r10, r1, r2);
      f.mvn(r11, r1);
      f.and_(r11, r11, r3);
      f.orr(r10, r10, r11);
    };
    const auto f2 = [&f] {  // b ^ c ^ d
      using namespace asmkit;
      f.eor(r10, r1, r2);
      f.eor(r10, r10, r3);
    };
    const auto f3 = [&f] {  // (b&c) | (b&d) | (c&d)
      using namespace asmkit;
      f.and_(r10, r1, r2);
      f.and_(r11, r1, r3);
      f.orr(r10, r10, r11);
      f.and_(r11, r2, r3);
      f.orr(r10, r10, r11);
    };

    f.movi32(r9, 0x5A827999u);
    for (i32 t = 0; t < 20; ++t) emitRound(t, f1);
    f.movi32(r9, 0x6ED9EBA1u);
    for (i32 t = 20; t < 40; ++t) emitRound(t, f2);
    f.movi32(r9, 0x8F1BBCDCu);
    for (i32 t = 40; t < 60; ++t) emitRound(t, f3);
    f.movi32(r9, 0xCA62C1D6u);
    for (i32 t = 60; t < 80; ++t) emitRound(t, f2);

    // H += working variables.
    f.ldr(r10, r8, 0);
    f.add(r10, r10, r0);
    f.str(r10, r8, 0);
    f.ldr(r10, r8, 4);
    f.add(r10, r10, r1);
    f.str(r10, r8, 4);
    f.ldr(r10, r8, 8);
    f.add(r10, r10, r2);
    f.str(r10, r8, 8);
    f.ldr(r10, r8, 12);
    f.add(r10, r10, r3);
    f.str(r10, r8, 12);
    f.ldr(r10, r8, 16);
    f.add(r10, r10, r7);
    f.str(r10, r8, 16);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  u32 input_off_ = 0;
  u32 nblocks_off_ = 0;
  u32 hstate_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeSha(u64 seed) {
  return std::make_unique<ShaWorkload>(seed);
}

}  // namespace wp::workloads
