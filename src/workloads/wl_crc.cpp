// crc — MiBench telecomm/CRC32: table-driven CRC-32 (IEEE 802.3
// polynomial, reflected) over a byte buffer, exactly the algorithm of
// the original benchmark's crc32() loop.
#include <array>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallLen = 12 * 1024;
constexpr std::size_t kLargeLen = 192 * 1024;

std::array<u32, 256> crcTable() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

u32 referenceCrc(std::span<const u8> data) {
  const auto table = crcTable();
  u32 crc = 0xFFFFFFFFu;
  for (const u8 b : data) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

class CrcWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "crc"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    const auto table = crcTable();
    table_off_ = mb.dataWords("crc_table", table);
    input_off_ = mb.bss("input", kLargeLen);
    len_off_ = mb.bss("input_len", 4);
    out_off_ = mb.bss("output", 4);

    // main: r4 = cursor, r5 = end, r6 = crc, r7 = table base.
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7});
    f.la(r4, "input");
    f.la(r0, "input_len");
    f.ldr(r5, r0);
    f.add(r5, r4, r5);
    f.movi32(r6, 0xFFFFFFFFu);
    f.la(r7, "crc_table");

    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpBr(r4, r5, Cond::kGeu, done);
    f.ldrb(r0, r4);          // byte
    f.eor(r0, r6, r0);       // crc ^ byte
    f.andi(r0, r0, 0xFF);    // index
    f.lsli(r0, r0, 2);
    f.ldrx(r0, r7, r0);      // table[index]
    f.lsri(r6, r6, 8);
    f.eor(r6, r0, r6);       // new crc
    f.addi(r4, r4, 1);
    f.jmp(loop);

    f.bind(done);
    f.mvn(r0, r6);           // ~crc
    f.la(r1, "output");
    f.str(r0, r1);
    f.epilogue({r4, r5, r6, r7});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto data = inputData(size);
    writeBytes(memory, guestAddr(input_off_), data);
    memory.store32(guestAddr(len_off_), static_cast<u32>(data.size()));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), 4);
  }

  std::vector<u8> expected(InputSize size) const override {
    return u32ToBytes(referenceCrc(inputData(size)));
  }

 private:
  std::vector<u8> inputData(InputSize size) const {
    return randomBytes("crc", size,
                       size == InputSize::kSmall ? kSmallLen : kLargeLen,
                       experimentSeed());
  }

  u32 table_off_ = 0;
  u32 input_off_ = 0;
  u32 len_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeCrc(u64 seed) {
  return std::make_unique<CrcWorkload>(seed);
}

}  // namespace wp::workloads
