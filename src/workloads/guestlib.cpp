#include "workloads/guestlib.hpp"

namespace wp::workloads {

using namespace asmkit;

void emitUdiv(asmkit::ModuleBuilder& mb) {
  // Restoring long division, 32 iterations.
  // In: r0 numerator, r1 divisor. Out: r0 quotient, r1 remainder.
  auto& f = mb.func("udiv");
  f.push({r4, r5});
  f.mov(r2, r0);   // shifting numerator
  f.movi(r0, 0);   // quotient
  f.movi(r3, 0);   // remainder
  f.movi(r4, 32);  // iteration counter

  const auto loop = f.label();
  const auto skip = f.label();
  f.bind(loop);
  f.lsli(r3, r3, 1);
  f.lsri(r5, r2, 31);
  f.orr(r3, r3, r5);
  f.lsli(r2, r2, 1);
  f.lsli(r0, r0, 1);
  f.cmpBr(r3, r1, Cond::kLtu, skip);
  f.sub(r3, r3, r1);
  f.orri(r0, r0, 1);
  f.bind(skip);
  f.subi(r4, r4, 1);
  f.cmpiBr(r4, 0, Cond::kNe, loop);

  f.mov(r1, r3);
  f.pop({r4, r5});
  f.ret();
}

void emitSdiv(asmkit::ModuleBuilder& mb) {
  emitUdiv(mb);
  // In: r0 numerator, r1 divisor. Out: r0 = r0/r1 truncated toward zero,
  // r1 = remainder carrying the numerator's sign (C semantics).
  auto& f = mb.func("sdiv");
  f.prologue({r4, r5});
  f.movi(r4, 0);  // negate quotient?
  f.movi(r5, 0);  // negate remainder?

  const auto num_pos = f.label();
  f.cmpiBr(r0, 0, Cond::kGe, num_pos);
  f.mvn(r0, r0);
  f.addi(r0, r0, 1);
  f.eori(r4, r4, 1);
  f.movi(r5, 1);
  f.bind(num_pos);

  const auto den_pos = f.label();
  f.cmpiBr(r1, 0, Cond::kGe, den_pos);
  f.mvn(r1, r1);
  f.addi(r1, r1, 1);
  f.eori(r4, r4, 1);
  f.bind(den_pos);

  f.call("udiv");

  const auto no_neg_q = f.label();
  f.cmpiBr(r4, 0, Cond::kEq, no_neg_q);
  f.mvn(r0, r0);
  f.addi(r0, r0, 1);
  f.bind(no_neg_q);

  const auto no_neg_r = f.label();
  f.cmpiBr(r5, 0, Cond::kEq, no_neg_r);
  f.mvn(r1, r1);
  f.addi(r1, r1, 1);
  f.bind(no_neg_r);
  f.epilogue({r4, r5});
}

}  // namespace wp::workloads
