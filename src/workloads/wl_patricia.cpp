// patricia — MiBench network/patricia: a PATRICIA-style radix trie
// (crit-bit form: internal nodes store the index of the distinguishing
// bit, leaves store keys) over IPv4-like addresses with heavy prefix
// sharing, then a query phase. Pointer-chasing, data-dependent branches
// and a bump allocator, all in guest memory.
#include <set>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

struct Sizes {
  std::size_t inserts, queries;
};

Sizes sizesFor(InputSize s) {
  return s == InputSize::kSmall ? Sizes{500, 1000} : Sizes{4000, 8000};
}

// IPv4-flavoured keys: one of 256 shared /16 prefixes + a random host
// part, so trie paths share long prefixes as in routing tables.
std::vector<u32> insertKeys(InputSize s, u64 seed) {
  const Sizes z = sizesFor(s);
  Rng rng(mixSeed(s == InputSize::kSmall ? 0x9a717ULL : 0x9a718ULL, seed));
  std::vector<u32> prefixes(256);
  for (auto& p : prefixes) p = rng.next32() & 0xffff0000u;
  std::vector<u32> keys(z.inserts);
  for (auto& k : keys) {
    k = prefixes[rng.below(prefixes.size())] | (rng.next32() & 0xffffu);
  }
  return keys;
}

std::vector<u32> queryKeys(InputSize s, u64 seed) {
  const Sizes z = sizesFor(s);
  const auto keys = insertKeys(s, seed);
  Rng rng(mixSeed(s == InputSize::kSmall ? 0x2b4dULL : 0x2b4eULL, seed));
  std::vector<u32> q(z.queries);
  for (auto& k : q) {
    k = rng.chance(0.5) ? keys[rng.below(keys.size())] : rng.next32();
  }
  return q;
}

class PatriciaWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "patricia"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    const Sizes z = sizesFor(InputSize::kLarge);
    keys_off_ = mb.bss("keys", static_cast<u32>(z.inserts * 4));
    nkeys_off_ = mb.bss("nkeys", 4);
    queries_off_ = mb.bss("queries", static_cast<u32>(z.queries * 4));
    nqueries_off_ = mb.bss("nqueries", 4);
    out_off_ = mb.bss("results", 8);
    mb.bss("trie_root", 4);
    heap_off_ = mb.bss("heap", 160 * 1024);
    heapnext_off_ = mb.bss("heap_next", 4);

    emitInsert(mb);
    emitSearch(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7});
    // heap_next = &heap.
    f.la(r0, "heap");
    f.la(r1, "heap_next");
    f.str(r0, r1);

    f.la(r4, "keys");
    f.la(r0, "nkeys");
    f.ldr(r5, r0);
    f.movi(r6, 0);  // inserted
    const auto il = f.label();
    const auto idone = f.label();
    f.bind(il);
    f.cmpiBr(r5, 0, Cond::kEq, idone);
    f.ldr(r0, r4, 0);
    f.call("trie_insert");
    f.add(r6, r6, r0);
    f.addi(r4, r4, 4);
    f.subi(r5, r5, 1);
    f.jmp(il);
    f.bind(idone);
    f.la(r0, "results");
    f.str(r6, r0, 0);

    f.la(r4, "queries");
    f.la(r0, "nqueries");
    f.ldr(r5, r0);
    f.movi(r7, 0);  // hits
    const auto ql = f.label();
    const auto qdone = f.label();
    f.bind(ql);
    f.cmpiBr(r5, 0, Cond::kEq, qdone);
    f.ldr(r0, r4, 0);
    f.call("trie_search");
    f.add(r7, r7, r0);
    f.addi(r4, r4, 4);
    f.subi(r5, r5, 1);
    f.jmp(ql);
    f.bind(qdone);
    f.la(r0, "results");
    f.str(r7, r0, 4);
    f.epilogue({r4, r5, r6, r7});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto ins = insertKeys(size, experimentSeed());
    const auto qs = queryKeys(size, experimentSeed());
    writeWords(memory, guestAddr(keys_off_), ins);
    memory.store32(guestAddr(nkeys_off_), static_cast<u32>(ins.size()));
    writeWords(memory, guestAddr(queries_off_), qs);
    memory.store32(guestAddr(nqueries_off_), static_cast<u32>(qs.size()));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), 8);
  }

  std::vector<u8> expected(InputSize size) const override {
    const auto ins = insertKeys(size, experimentSeed());
    const std::set<u32> keyset(ins.begin(), ins.end());
    u32 hits = 0;
    for (const u32 q : queryKeys(size, experimentSeed())) {
      hits += keyset.count(q);
    }
    std::vector<u32> out = {static_cast<u32>(keyset.size()), hits};
    return toBytes(out);
  }

 private:
  // Emits: r3 = bit(r4, r1) — the r1-th bit of the key counted from the
  // MSB. Clobbers r2.
  static void emitBitOfKey(asmkit::FunctionBuilder& f) {
    using namespace asmkit;
    f.movi(r2, 31);
    f.sub(r2, r2, r1);
    f.lsr(r3, r4, r2);
    f.andi(r3, r3, 1);
  }

  // trie_insert(r0 = key) -> r0 = 1 if inserted, 0 if duplicate.
  static void emitInsert(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("trie_insert");
    f.prologue({r4, r5, r6, r7, r8, r9});
    f.mov(r4, r0);
    f.la(r9, "trie_root");
    f.ldr(r0, r9, 0);
    const auto nonempty = f.label();
    f.cmpiBr(r0, 0, Cond::kNe, nonempty);
    // Empty trie: root = new leaf.
    f.la(r1, "heap_next");
    f.ldr(r2, r1, 0);
    f.str(r4, r2, 0);
    f.addi(r3, r2, 4);
    f.str(r3, r1, 0);
    f.orri(r2, r2, 1);
    f.str(r2, r9, 0);
    f.movi(r0, 1);
    f.epilogue({r4, r5, r6, r7, r8, r9});

    f.bind(nonempty);
    // Walk to the nearest leaf.
    f.mov(r5, r0);
    const auto walk = f.label();
    const auto atleaf = f.label();
    const auto goright = f.label();
    f.bind(walk);
    f.andi(r1, r5, 1);
    f.cmpiBr(r1, 1, Cond::kEq, atleaf);
    f.ldr(r1, r5, 0);  // bit index
    emitBitOfKey(f);
    f.cmpiBr(r3, 1, Cond::kEq, goright);
    f.ldr(r5, r5, 4);
    f.jmp(walk);
    f.bind(goright);
    f.ldr(r5, r5, 8);
    f.jmp(walk);

    f.bind(atleaf);
    f.subi(r6, r5, 1);  // untag
    f.ldr(r6, r6, 0);   // leaf key
    f.eor(r7, r4, r6);
    const auto differs = f.label();
    f.cmpiBr(r7, 0, Cond::kNe, differs);
    f.movi(r0, 0);      // duplicate
    f.epilogue({r4, r5, r6, r7, r8, r9});

    f.bind(differs);
    // r8 = index (from MSB) of the first differing bit.
    f.movi(r8, 0);
    const auto clz = f.label();
    const auto clzdone = f.label();
    f.bind(clz);
    f.lsl(r2, r7, r8);
    f.lsri(r2, r2, 31);
    f.cmpiBr(r2, 1, Cond::kEq, clzdone);
    f.addi(r8, r8, 1);
    f.jmp(clz);
    f.bind(clzdone);

    // Allocate leaf (1 word) + internal (3 words). The tagged leaf
    // pointer lives in r7 (the diff value is dead) because
    // emitBitOfKey scratches r2.
    f.la(r1, "heap_next");
    f.ldr(r2, r1, 0);   // leaf address
    f.str(r4, r2, 0);
    f.addi(r0, r2, 4);  // internal address
    f.addi(r5, r0, 12);
    f.str(r5, r1, 0);
    f.str(r8, r0, 0);   // bit index
    f.orri(r7, r2, 1);  // tagged leaf
    // dir = bit(key, r8); child[dir] = leaf.
    f.mov(r1, r8);
    emitBitOfKey(f);
    const auto leaf_right = f.label();
    const auto placed = f.label();
    f.cmpiBr(r3, 1, Cond::kEq, leaf_right);
    f.str(r7, r0, 4);
    f.jmp(placed);
    f.bind(leaf_right);
    f.str(r7, r0, 8);
    f.bind(placed);

    // Find the insertion point: the first edge whose node is a leaf or
    // has a bit index >= r8.
    f.la(r5, "trie_root");  // r5 = address of the edge word
    const auto find = f.label();
    const auto found = f.label();
    const auto fright = f.label();
    f.bind(find);
    f.ldr(r6, r5, 0);       // candidate tagged pointer
    f.andi(r1, r6, 1);
    f.cmpiBr(r1, 1, Cond::kEq, found);
    f.ldr(r1, r6, 0);       // its bit index
    f.cmpBr(r1, r8, Cond::kGe, found);
    emitBitOfKey(f);
    f.cmpiBr(r3, 1, Cond::kEq, fright);
    f.addi(r5, r6, 4);
    f.jmp(find);
    f.bind(fright);
    f.addi(r5, r6, 8);
    f.jmp(find);

    f.bind(found);
    // n.child[1-dir] = displaced subtree; edge = internal node.
    f.mov(r1, r8);
    emitBitOfKey(f);
    const auto sub_left = f.label();
    const auto linked = f.label();
    f.cmpiBr(r3, 1, Cond::kEq, sub_left);
    f.str(r6, r0, 8);  // dir==0: subtree goes right
    f.jmp(linked);
    f.bind(sub_left);
    f.str(r6, r0, 4);  // dir==1: subtree goes left
    f.bind(linked);
    f.str(r0, r5, 0);
    f.movi(r0, 1);
    f.epilogue({r4, r5, r6, r7, r8, r9});
  }

  // trie_search(r0 = key) -> r0 = 1 if present.
  static void emitSearch(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("trie_search");
    f.prologue({r4, r5});
    f.mov(r4, r0);
    f.la(r0, "trie_root");
    f.ldr(r5, r0, 0);
    const auto miss = f.label();
    f.cmpiBr(r5, 0, Cond::kEq, miss);
    const auto walk = f.label();
    const auto atleaf = f.label();
    const auto goright = f.label();
    f.bind(walk);
    f.andi(r1, r5, 1);
    f.cmpiBr(r1, 1, Cond::kEq, atleaf);
    f.ldr(r1, r5, 0);
    emitBitOfKey(f);
    f.cmpiBr(r3, 1, Cond::kEq, goright);
    f.ldr(r5, r5, 4);
    f.jmp(walk);
    f.bind(goright);
    f.ldr(r5, r5, 8);
    f.jmp(walk);
    f.bind(atleaf);
    f.subi(r5, r5, 1);
    f.ldr(r5, r5, 0);
    const auto hit = f.label();
    f.cmpBr(r5, r4, Cond::kEq, hit);
    f.bind(miss);
    f.movi(r0, 0);
    f.epilogue({r4, r5});
    f.bind(hit);
    f.movi(r0, 1);
    f.epilogue({r4, r5});
  }

  u32 keys_off_ = 0;
  u32 nkeys_off_ = 0;
  u32 queries_off_ = 0;
  u32 nqueries_off_ = 0;
  u32 out_off_ = 0;
  u32 heap_off_ = 0;
  u32 heapnext_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makePatricia(u64 seed) {
  return std::make_unique<PatriciaWorkload>(seed);
}

}  // namespace wp::workloads
