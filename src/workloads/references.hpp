// Host-side reference implementations of the workload kernels.
//
// Each guest (WRISC-32) kernel has a bit-exact C++ twin here; workload
// verification compares guest output against these, and the unit tests
// check the twins against published vectors (FIPS-197 for AES, the "abc"
// vector for SHA-1, the CRC-32 check value) where such vectors exist.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "support/bitops.hpp"

namespace wp::workloads::ref {

// --- SHA-1 ------------------------------------------------------------
/// Internal state words after digesting @p message (with standard
/// padding). The guest stores the same five words little-endian.
[[nodiscard]] std::array<u32, 5> sha1(std::span<const u8> message);

/// Standard MD-padding: message + 0x80 + zeros + 64-bit bit length.
[[nodiscard]] std::vector<u8> sha1Pad(std::span<const u8> message);

// --- CRC-32 -----------------------------------------------------------
[[nodiscard]] u32 crc32(std::span<const u8> data);

// --- AES-128 (FIPS-197) -------------------------------------------------
struct Aes128 {
  explicit Aes128(std::span<const u8> key16);
  void encryptBlock(const u8 in[16], u8 out[16]) const;
  void decryptBlock(const u8 in[16], u8 out[16]) const;
  /// 11 round keys x 16 bytes, as laid out for the guest.
  [[nodiscard]] const std::array<u8, 176>& roundKeys() const {
    return round_keys_;
  }

 private:
  std::array<u8, 176> round_keys_{};
};

/// AES building blocks, exposed so the guest's constant tables are
/// generated from the same source as the reference.
[[nodiscard]] const std::array<u8, 256>& aesSbox();
[[nodiscard]] const std::array<u8, 256>& aesInvSbox();
[[nodiscard]] u8 aesGfmul(u8 a, u8 b);

// --- Blowfish-variant ---------------------------------------------------
/// Blowfish with the standard algorithm but PRNG-seeded initial P/S
/// tables instead of the pi digits (documented substitution — the
/// hot code paths are identical). Key schedule runs exactly as in
/// Schneier's reference: XOR key into P, then repeatedly encrypt the
/// zero block to regenerate P and S.
struct Blowfish {
  Blowfish(std::span<const u8> key, u64 table_seed);
  void encryptBlock(u32& left, u32& right) const;
  void decryptBlock(u32& left, u32& right) const;

  /// Initial (pre-key-schedule) tables with the same seed; the guest
  /// runs the key schedule itself starting from these.
  static void initialTables(u64 seed, std::array<u32, 18>& p,
                            std::array<u32, 1024>& s);

  std::array<u32, 18> p{};
  std::array<u32, 1024> s{};  // 4 boxes x 256, contiguous

 private:
  [[nodiscard]] u32 feistel(u32 x) const;
};

// --- IMA ADPCM ----------------------------------------------------------
/// Encoder/decoder matching the MiBench adpcm coder (Intel/DVI IMA).
[[nodiscard]] std::vector<u8> adpcmEncode(std::span<const i16> pcm);
[[nodiscard]] std::vector<i16> adpcmDecode(std::span<const u8> codes,
                                           std::size_t sample_count);
[[nodiscard]] std::span<const i16> adpcmStepTable();   // 89 entries
[[nodiscard]] std::span<const i8> adpcmIndexTable();   // 16 entries

// --- Fixed-point FFT ------------------------------------------------------
/// In-place radix-2 DIT FFT on Q15 data, bit-exact with the guest:
/// butterflies use ((a*b) >> 15) products and >>1 scaling per stage.
/// @p inverse uses conjugated twiddles (no final 1/N — the per-stage >>1
/// already applies 1/N overall).
void fftFixed(std::vector<i32>& re, std::vector<i32>& im, bool inverse);

/// Q15 twiddle tables (cos, -sin) for size @p n, as laid out for the
/// guest: index k in [0, n/2).
void fftTwiddles(std::size_t n, std::vector<i32>& cos_q15,
                 std::vector<i32>& sin_q15);

}  // namespace wp::workloads::ref
