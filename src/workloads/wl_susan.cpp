// susan_s / susan_e / susan_c — MiBench auto/susan: the SUSAN family of
// image kernels built on a brightness-similarity LUT.
//   susan_s: 3x3 LUT-weighted smoothing with an integer divide per pixel
//            (the guest calls the udiv library routine, as ARM MiBench
//            calls __divsi3),
//   susan_e: 3x3 USAN edge response (unrolled neighbourhood),
//   susan_c: 5x5 USAN corner response (looped neighbourhood).
// Borders are copied through unchanged.
#include <cmath>
#include <cstdlib>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/guestlib.hpp"

namespace wp::workloads {

namespace {

enum class Variant { kSmooth, kEdge, kCorner };

struct Dims {
  u32 w, h;
};

Dims dimsFor(Variant v, InputSize s) {
  const bool small = s == InputSize::kSmall;
  switch (v) {
    case Variant::kSmooth: return small ? Dims{48, 36} : Dims{96, 72};
    case Variant::kEdge:   return small ? Dims{80, 60} : Dims{192, 144};
    case Variant::kCorner: return small ? Dims{56, 42} : Dims{112, 84};
  }
  WP_UNREACHABLE("bad variant");
}

constexpr u32 kMaxPixels = 192 * 144;

/// Brightness-similarity LUT: lut[d + 256] = round(100 * exp(-(d/t)^2)).
std::vector<u8> brightnessLut(double t) {
  std::vector<u8> lut(512);
  for (int i = 0; i < 512; ++i) {
    const double d = (i - 256) / t;
    lut[i] = static_cast<u8>(std::lround(100.0 * std::exp(-d * d)));
  }
  return lut;
}

constexpr double kSmoothT = 27.0;
constexpr double kEdgeT = 20.0;
constexpr double kCornerT = 20.0;
constexpr i32 kEdgeG = 600;    // of 800 max
constexpr i32 kCornerG = 1200; // of 2400 max

std::vector<u8> image(Variant v, InputSize s, u64 seed) {
  const Dims d = dimsFor(v, s);
  const char* salt = v == Variant::kSmooth  ? "susan_s"
                     : v == Variant::kEdge ? "susan_e"
                                           : "susan_c";
  return syntheticImage(salt, s, d.w, d.h, seed);
}

std::vector<u8> referenceOutput(Variant v, InputSize s, u64 seed) {
  const Dims d = dimsFor(v, s);
  const std::vector<u8> img = image(v, s, seed);
  std::vector<u8> out = img;  // borders pass through

  const auto lut = brightnessLut(v == Variant::kSmooth  ? kSmoothT
                                 : v == Variant::kEdge ? kEdgeT
                                                       : kCornerT);
  const int margin = v == Variant::kCorner ? 2 : 1;
  for (u32 y = margin; y + margin < d.h; ++y) {
    for (u32 x = margin; x + margin < d.w; ++x) {
      const i32 c = img[y * d.w + x];
      if (v == Variant::kSmooth) {
        u32 total = 0, wsum = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const i32 p = img[(y + dy) * d.w + (x + dx)];
            const u32 wgt = lut[p - c + 256];
            wsum += wgt;
            total += wgt * static_cast<u32>(p);
          }
        }
        out[y * d.w + x] = static_cast<u8>(total / wsum);
      } else {
        i32 n = 0;
        for (int dy = -margin; dy <= margin; ++dy) {
          for (int dx = -margin; dx <= margin; ++dx) {
            if (dy == 0 && dx == 0) continue;
            const i32 p = img[(y + dy) * d.w + (x + dx)];
            n += lut[p - c + 256];
          }
        }
        const i32 g = v == Variant::kEdge ? kEdgeG : kCornerG;
        const int shift = v == Variant::kEdge ? 2 : 3;
        out[y * d.w + x] =
            n < g ? static_cast<u8>((g - n) >> shift) : u8{0};
      }
    }
  }
  return out;
}

class SusanWorkload : public Workload {
 public:
  SusanWorkload(u64 seed, Variant v) : Workload(seed), variant_(v) {}

  std::string name() const override {
    switch (variant_) {
      case Variant::kSmooth: return "susan_s";
      case Variant::kEdge:   return "susan_e";
      case Variant::kCorner: return "susan_c";
    }
    WP_UNREACHABLE("bad variant");
  }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    mb.data("lut", brightnessLut(variant_ == Variant::kSmooth  ? kSmoothT
                                 : variant_ == Variant::kEdge ? kEdgeT
                                                              : kCornerT));
    img_off_ = mb.bss("img", kMaxPixels);
    out_off_ = mb.bss("out", kMaxPixels);
    w_off_ = mb.bss("width", 4);
    h_off_ = mb.bss("height", 4);

    if (variant_ == Variant::kSmooth) emitSdivFree(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r4, "img");
    f.la(r5, "out");
    f.la(r0, "width");
    f.ldr(r6, r0);
    f.la(r0, "height");
    f.ldr(r7, r0);
    f.la(r10, "lut");

    // Pass the whole image through first (borders).
    f.mul(r0, r6, r7);
    f.movi(r1, 0);
    const auto copy = f.label();
    f.bind(copy);
    f.ldrbx(r2, r4, r1);
    f.strbx(r2, r5, r1);
    f.addi(r1, r1, 1);
    f.cmpBr(r1, r0, Cond::kLt, copy);

    const int margin = variant_ == Variant::kCorner ? 2 : 1;
    f.movi(r8, margin);  // y
    const auto yloop = f.label();
    const auto ydone = f.label();
    f.bind(yloop);
    f.subi(r0, r7, margin);
    f.cmpBr(r8, r0, Cond::kGe, ydone);
    f.movi(r9, margin);  // x
    const auto xloop = f.label();
    const auto xdone = f.label();
    f.bind(xloop);
    f.subi(r0, r6, margin);
    f.cmpBr(r9, r0, Cond::kGe, xdone);

    // r3 = &img[y*w + x]; r15 = centre value.
    f.mul(r3, r8, r6);
    f.add(r3, r3, r9);
    f.add(r3, r3, r4);
    f.ldrb(r15, r3, 0);
    f.movi(r11, 0);  // total / USAN accumulator
    f.movi(r12, 0);  // weight sum (smoothing only)

    if (variant_ == Variant::kSmooth) {
      emitSmoothNeighbours(f);
      // out = total / wsum.
      f.mov(r0, r11);
      f.mov(r1, r12);
      f.call("udiv");
      f.mul(r2, r8, r6);
      f.add(r2, r2, r9);
      f.strbx(r0, r5, r2);
    } else {
      emitUsan(f, margin);
      // response = n < g ? (g - n) >> shift : 0.
      const i32 g = variant_ == Variant::kEdge ? kEdgeG : kCornerG;
      const int shift = variant_ == Variant::kEdge ? 2 : 3;
      const auto flat = f.label();
      const auto store = f.label();
      f.movi(r0, 0);
      f.cmpiBr(r11, g, Cond::kGe, flat);
      f.movi(r0, g);
      f.sub(r0, r0, r11);
      f.asri(r0, r0, static_cast<u32>(shift));
      f.bind(flat);
      f.jmp(store);  // single join point keeps the CFG honest
      f.bind(store);
      f.mul(r2, r8, r6);
      f.add(r2, r2, r9);
      f.strbx(r0, r5, r2);
    }

    f.addi(r9, r9, 1);
    f.jmp(xloop);
    f.bind(xdone);
    f.addi(r8, r8, 1);
    f.jmp(yloop);
    f.bind(ydone);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const Dims d = dimsFor(variant_, size);
    writeBytes(memory, guestAddr(img_off_),
               image(variant_, size, experimentSeed()));
    memory.store32(guestAddr(w_off_), d.w);
    memory.store32(guestAddr(h_off_), d.h);
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), kMaxPixels);
  }

  std::vector<u8> expected(InputSize size) const override {
    std::vector<u8> e = referenceOutput(variant_, size, experimentSeed());
    e.resize(kMaxPixels, 0);
    return e;
  }

 private:
  static void emitSdivFree(asmkit::ModuleBuilder& mb) { emitUdiv(mb); }

  // 9 unrolled neighbour taps: r11 += wgt*p, r12 += wgt. Uses r0-r2.
  static void emitSmoothNeighbours(asmkit::FunctionBuilder& f) {
    using namespace asmkit;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        // r2 = &img[(y+dy)*w + (x+dx)] from the centre pointer r3.
        if (dy < 0) {
          f.sub(r2, r3, r6);
        } else if (dy > 0) {
          f.add(r2, r3, r6);
        } else {
          f.mov(r2, r3);
        }
        if (dx != 0) f.addi(r2, r2, dx);
        f.ldrb(r0, r2, 0);
        f.sub(r1, r0, r15);
        f.addi(r1, r1, 256);
        f.ldrbx(r1, r10, r1);  // wgt
        f.add(r12, r12, r1);
        f.mul(r0, r1, r0);
        f.add(r11, r11, r0);
      }
    }
  }

  // Fully unrolled (2*margin+1)^2 - 1 USAN taps: r11 += lut[p - c + 256].
  // Row bases are formed with width adds (r6 = w), pixels addressed with
  // immediate offsets — the code a compiler emits for a fixed mask.
  static void emitUsan(asmkit::FunctionBuilder& f, int margin) {
    using namespace asmkit;
    for (int dy = -margin; dy <= margin; ++dy) {
      // r2 = &img[(y+dy)*w + x].
      if (dy == 0) {
        f.mov(r2, r3);
      } else {
        const bool up = dy < 0;
        for (int step = 0; step < std::abs(dy); ++step) {
          if (step == 0) {
            up ? f.sub(r2, r3, r6) : f.add(r2, r3, r6);
          } else {
            up ? f.sub(r2, r2, r6) : f.add(r2, r2, r6);
          }
        }
      }
      for (int dx = -margin; dx <= margin; ++dx) {
        if (dy == 0 && dx == 0) continue;
        f.ldrb(r0, r2, dx);
        f.sub(r0, r0, r15);
        f.addi(r0, r0, 256);
        f.ldrbx(r0, r10, r0);
        f.add(r11, r11, r0);
      }
    }
  }

  Variant variant_;
  u32 img_off_ = 0;
  u32 out_off_ = 0;
  u32 w_off_ = 0;
  u32 h_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeSusanS(u64 seed) {
  return std::make_unique<SusanWorkload>(seed, Variant::kSmooth);
}
std::unique_ptr<Workload> makeSusanE(u64 seed) {
  return std::make_unique<SusanWorkload>(seed, Variant::kEdge);
}
std::unique_ptr<Workload> makeSusanC(u64 seed) {
  return std::make_unique<SusanWorkload>(seed, Variant::kCorner);
}

}  // namespace

// (factories are defined inside wp::workloads above)
