// fft / fft_i — MiBench telecomm/FFT: radix-2 decimation-in-time FFT
// over multiple waveforms. The original uses floating point; WRISC-32
// has none, so this is a Q15 fixed-point FFT (per-stage >>1 scaling,
// precomputed Q15 twiddle tables) — the host reference implements the
// identical integer arithmetic, and a property test checks it against a
// double-precision DFT.
//
// The forward and inverse programs share the guest kernel: the twiddle
// sign convention lives entirely in the host-written sine table, exactly
// like the original benchmark's single binary with the -i flag.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/references.hpp"

namespace wp::workloads {

namespace {

constexpr u32 kSmallN = 256, kSmallRuns = 4;
constexpr u32 kLargeN = 1024, kLargeRuns = 8;

struct Params {
  u32 n, runs;
};

Params paramsFor(InputSize size) {
  return size == InputSize::kSmall ? Params{kSmallN, kSmallRuns}
                                   : Params{kLargeN, kLargeRuns};
}

// Q15 input waveforms, one per run (real input, zero imaginary).
std::vector<i32> baseSignal(InputSize size, u64 seed) {
  const Params p = paramsFor(size);
  const auto audio = syntheticAudio(
      "fft", size, static_cast<std::size_t>(p.n) * p.runs, seed);
  std::vector<i32> out(audio.size());
  for (std::size_t i = 0; i < audio.size(); ++i) out[i] = audio[i];
  return out;
}

class FftWorkload : public Workload {
 public:
  FftWorkload(u64 seed, bool inverse) : Workload(seed), inverse_(inverse) {}

  std::string name() const override { return inverse_ ? "fft_i" : "fft"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    re_off_ = mb.bss("re", kLargeN * kLargeRuns * 4);
    im_off_ = mb.bss("im", kLargeN * kLargeRuns * 4);
    cos_off_ = mb.bss("cos_tab", kLargeN / 2 * 4);
    sin_off_ = mb.bss("sin_tab", kLargeN / 2 * 4);
    n_off_ = mb.bss("fft_n", 4);
    runs_off_ = mb.bss("fft_runs", 4);

    emitFft(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8});
    f.la(r0, "fft_n");
    f.ldr(r4, r0);        // n
    f.la(r0, "fft_runs");
    f.ldr(r5, r0);        // runs remaining
    f.la(r6, "re");
    f.la(r7, "im");
    f.lsli(r8, r4, 2);    // bytes per run
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);
    f.mov(r0, r6);
    f.mov(r1, r7);
    f.mov(r2, r4);
    f.call("fft");
    f.add(r6, r6, r8);
    f.add(r7, r7, r8);
    f.subi(r5, r5, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5, r6, r7, r8});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const Params p = paramsFor(size);
    memory.store32(guestAddr(n_off_), p.n);
    memory.store32(guestAddr(runs_off_), p.runs);

    std::vector<i32> cs, sn;
    ref::fftTwiddles(p.n, cs, sn);
    std::vector<u32> cos_w(p.n / 2), sin_w(p.n / 2);
    for (u32 k = 0; k < p.n / 2; ++k) {
      cos_w[k] = static_cast<u32>(cs[k]);
      // Forward FFT uses e^{-i...}: the guest reads the sine table
      // verbatim, so the direction is baked in here.
      sin_w[k] = static_cast<u32>(inverse_ ? sn[k] : -sn[k]);
    }
    writeWords(memory, guestAddr(cos_off_), cos_w);
    writeWords(memory, guestAddr(sin_off_), sin_w);

    const auto [re, im] = inputArrays(size, inverse_, experimentSeed());
    writeWords(memory, guestAddr(re_off_), toWords(re));
    writeWords(memory, guestAddr(im_off_), toWords(im));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    std::vector<u8> out =
        memory.readBlock(guestAddr(re_off_), kLargeN * kLargeRuns * 4);
    const std::vector<u8> im =
        memory.readBlock(guestAddr(im_off_), kLargeN * kLargeRuns * 4);
    out.insert(out.end(), im.begin(), im.end());
    return out;
  }

  std::vector<u8> expected(InputSize size) const override {
    const Params p = paramsFor(size);
    auto [re, im] = inputArrays(size, inverse_, experimentSeed());
    for (u32 run = 0; run < p.runs; ++run) {
      std::vector<i32> r(re.begin() + run * p.n, re.begin() + (run + 1) * p.n);
      std::vector<i32> i(im.begin() + run * p.n, im.begin() + (run + 1) * p.n);
      ref::fftFixed(r, i, inverse_);
      std::copy(r.begin(), r.end(), re.begin() + run * p.n);
      std::copy(i.begin(), i.end(), im.begin() + run * p.n);
    }
    std::vector<u32> all = toWords(re);
    all.resize(kLargeN * kLargeRuns, 0);
    const std::vector<u32> imw = toWords(im);
    std::vector<u32> imall = imw;
    imall.resize(kLargeN * kLargeRuns, 0);
    all.insert(all.end(), imall.begin(), imall.end());
    return toBytes(all);
  }

 private:
  static std::vector<u32> toWords(const std::vector<i32>& v) {
    std::vector<u32> w(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) w[i] = static_cast<u32>(v[i]);
    return w;
  }

  /// (re, im) inputs. Forward: the raw signal. Inverse: the forward
  /// transform of the signal (so fft_i undoes what fft produced).
  static std::pair<std::vector<i32>, std::vector<i32>> inputArrays(
      InputSize size, bool inverse, u64 seed) {
    const Params p = paramsFor(size);
    std::vector<i32> re = baseSignal(size, seed);
    std::vector<i32> im(re.size(), 0);
    if (inverse) {
      for (u32 run = 0; run < p.runs; ++run) {
        std::vector<i32> r(re.begin() + run * p.n,
                           re.begin() + (run + 1) * p.n);
        std::vector<i32> i(im.begin() + run * p.n,
                           im.begin() + (run + 1) * p.n);
        ref::fftFixed(r, i, /*inverse=*/false);
        std::copy(r.begin(), r.end(), re.begin() + run * p.n);
        std::copy(i.begin(), i.end(), im.begin() + run * p.n);
      }
    }
    return {std::move(re), std::move(im)};
  }

  // fft(r0 = re, r1 = im, r2 = n): in-place radix-2 DIT with Q15
  // twiddles and >>1 per-stage scaling.
  static void emitFft(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("fft");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.subi(sp, sp, 16);  // [0] sin base, [4] tr, [8] unused, [12] n
    f.la(r8, "sin_tab");
    f.str(r8, sp, 0);
    f.str(r2, sp, 12);
    f.la(r11, "cos_tab");

    // --- bit-reversal permutation ---
    f.movi(r3, 1);  // i
    f.movi(r4, 0);  // j
    const auto brl = f.label();
    const auto brdone = f.label();
    f.bind(brl);
    f.cmpBr(r3, r2, Cond::kGeu, brdone);
    f.lsri(r5, r2, 1);  // bit
    const auto wl = f.label();
    const auto wdone = f.label();
    f.bind(wl);
    f.and_(r8, r4, r5);
    f.cmpiBr(r8, 0, Cond::kEq, wdone);
    f.eor(r4, r4, r5);
    f.lsri(r5, r5, 1);
    f.jmp(wl);
    f.bind(wdone);
    f.eor(r4, r4, r5);
    const auto noswap = f.label();
    f.cmpBr(r3, r4, Cond::kGeu, noswap);
    f.lsli(r8, r3, 2);
    f.lsli(r9, r4, 2);
    f.ldrx(r10, r0, r8);
    f.ldrx(r12, r0, r9);
    f.strx(r12, r0, r8);
    f.strx(r10, r0, r9);
    f.ldrx(r10, r1, r8);
    f.ldrx(r12, r1, r9);
    f.strx(r12, r1, r8);
    f.strx(r10, r1, r9);
    f.bind(noswap);
    f.addi(r3, r3, 1);
    f.jmp(brl);
    f.bind(brdone);

    // --- butterfly stages ---
    f.movi(r3, 2);       // len
    f.lsri(r4, r2, 1);   // tstep
    const auto outer = f.label();
    const auto alldone = f.label();
    f.bind(outer);
    f.lsli(r5, r3, 1);   // half, in bytes ((len/2)*4)
    f.movi(r6, 0);       // i (elements)
    const auto middle = f.label();
    const auto middone = f.label();
    f.bind(middle);
    f.ldr(r2, sp, 12);
    f.cmpBr(r6, r2, Cond::kGeu, middone);
    f.movi(r7, 0);       // j (elements)
    const auto inner = f.label();
    const auto innerdone = f.label();
    f.bind(inner);
    f.lsli(r2, r7, 2);
    f.cmpBr(r2, r5, Cond::kGeu, innerdone);

    f.mul(r8, r7, r4);   // k = j * tstep
    f.lsli(r8, r8, 2);
    f.ldrx(r9, r11, r8);  // wr
    f.ldr(r10, sp, 0);
    f.ldrx(r10, r10, r8); // wi
    f.add(r12, r6, r7);
    f.lsli(r12, r12, 2);  // off1
    f.add(r8, r12, r5);   // off2

    // tr = (wr*re2 - wi*im2) >> 15
    f.ldrx(r15, r0, r8);
    f.mul(r15, r9, r15);
    f.ldrx(r2, r1, r8);
    f.mul(r2, r10, r2);
    f.sub(r15, r15, r2);
    f.asri(r15, r15, 15);
    f.str(r15, sp, 4);
    // ti = (wr*im2 + wi*re2) >> 15
    f.ldrx(r15, r1, r8);
    f.mul(r15, r9, r15);
    f.ldrx(r2, r0, r8);
    f.mul(r2, r10, r2);
    f.add(r15, r15, r2);
    f.asri(r15, r15, 15);

    // re updates (wr/wi now dead).
    f.ldrx(r9, r0, r12);  // re1
    f.ldr(r2, sp, 4);     // tr
    f.sub(r10, r9, r2);
    f.asri(r10, r10, 1);
    f.strx(r10, r0, r8);
    f.add(r10, r9, r2);
    f.asri(r10, r10, 1);
    f.strx(r10, r0, r12);
    // im updates (ti in r15).
    f.ldrx(r9, r1, r12);  // im1
    f.sub(r10, r9, r15);
    f.asri(r10, r10, 1);
    f.strx(r10, r1, r8);
    f.add(r10, r9, r15);
    f.asri(r10, r10, 1);
    f.strx(r10, r1, r12);

    f.addi(r7, r7, 1);
    f.jmp(inner);
    f.bind(innerdone);
    f.add(r6, r6, r3);
    f.jmp(middle);
    f.bind(middone);
    f.lsli(r3, r3, 1);
    f.lsri(r4, r4, 1);
    f.ldr(r2, sp, 12);
    f.cmpBr(r3, r2, Cond::kLe, outer);  // while len <= n
    f.bind(alldone);

    f.addi(sp, sp, 16);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  bool inverse_;
  u32 re_off_ = 0;
  u32 im_off_ = 0;
  u32 cos_off_ = 0;
  u32 sin_off_ = 0;
  u32 n_off_ = 0;
  u32 runs_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeFft(u64 seed) {
  return std::make_unique<FftWorkload>(seed, false);
}
std::unique_ptr<Workload> makeFftInv(u64 seed) {
  return std::make_unique<FftWorkload>(seed, true);
}

}  // namespace wp::workloads
