// rsynth — MiBench office/rsynth: the text-to-phoneme front end of a
// speech synthesizer, reduced to its letter-to-sound rule engine: for
// each position the engine tries context rules ('c'/'g' soften before
// e/i/y), then scans a digraph rule table ("th", "ch", "ee", ...), and
// falls back to a single-letter map. Table scanning over short strings
// with data-dependent exits — the original's hot pattern.
#include <string>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallLen = 2 * 1024;
constexpr std::size_t kLargeLen = 16 * 1024;

const char* const kDigraphs[] = {
    "th", "ch", "sh", "ph", "wh", "qu", "ck", "ng", "ee", "ea", "oo", "ou",
    "ow", "ai", "ay", "oi", "oy", "au", "aw", "ar", "er", "ir", "or", "ur",
};
constexpr u32 kNumDigraphs = sizeof(kDigraphs) / sizeof(kDigraphs[0]);
constexpr u8 kWordBoundary = 0;
constexpr u8 kSoftC = 60;
constexpr u8 kSoftG = 61;
constexpr u8 kDigraphBase = 30;
constexpr u8 kSingleBase = 1;

std::vector<u8> inputText(InputSize s, u64 seed) {
  return randomText("rsynth", s,
                    s == InputSize::kSmall ? kSmallLen : kLargeLen, seed);
}

bool softensNext(u8 c) { return c == 'e' || c == 'i' || c == 'y'; }

std::vector<u8> refPhonemes(InputSize s, u64 seed) {
  const auto text = inputText(s, seed);
  std::vector<u8> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const u8 c = text[i];
    if (c == ' ') {
      out.push_back(kWordBoundary);
      ++i;
      continue;
    }
    if (i + 1 < text.size()) {
      const u8 c2 = text[i + 1];
      if (c == 'c' && softensNext(c2)) {
        out.push_back(kSoftC);
        ++i;
        continue;
      }
      if (c == 'g' && softensNext(c2)) {
        out.push_back(kSoftG);
        ++i;
        continue;
      }
      bool matched = false;
      for (u32 j = 0; j < kNumDigraphs; ++j) {
        if (c == static_cast<u8>(kDigraphs[j][0]) &&
            c2 == static_cast<u8>(kDigraphs[j][1])) {
          out.push_back(static_cast<u8>(kDigraphBase + j));
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    out.push_back(static_cast<u8>(kSingleBase + (c - 'a')));
    ++i;
  }
  return out;
}

class RsynthWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "rsynth"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    std::vector<u8> pats;
    for (const char* d : kDigraphs) {
      pats.push_back(static_cast<u8>(d[0]));
      pats.push_back(static_cast<u8>(d[1]));
    }
    mb.data("digraphs", pats);
    text_off_ = mb.bss("text", kLargeLen);
    textn_off_ = mb.bss("text_n", 4);
    out_off_ = mb.bss("phonemes", kLargeLen);  // output <= input length
    outn_off_ = mb.bss("phonemes_n", 4);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9});
    f.la(r4, "text");
    f.la(r0, "text_n");
    f.ldr(r5, r0);       // n
    f.la(r6, "phonemes");
    f.movi(r7, 0);       // i
    f.movi(r8, 0);       // out count
    f.la(r9, "digraphs");

    const auto loop = f.label();
    const auto done = f.label();
    const auto emit1 = f.label();   // emit r0, advance 1
    const auto emit2 = f.label();   // emit r0, advance 2
    const auto single = f.label();
    const auto no_pair = f.label();
    f.bind(loop);
    f.cmpBr(r7, r5, Cond::kGe, done);
    f.ldrbx(r1, r4, r7);  // c

    const auto notspace = f.label();
    f.cmpiBr(r1, ' ', Cond::kNe, notspace);
    f.movi(r0, kWordBoundary);
    f.jmp(emit1);
    f.bind(notspace);

    // Need a second character for context and digraph rules.
    f.addi(r2, r7, 1);
    f.cmpBr(r2, r5, Cond::kGe, no_pair);
    f.ldrbx(r2, r4, r2);  // c2

    // Softening context rules.
    const auto not_c = f.label();
    const auto not_soft = f.label();
    const auto soften_check = f.label();
    const auto is_g = f.label();
    f.cmpiBr(r1, 'c', Cond::kEq, soften_check);
    f.cmpiBr(r1, 'g', Cond::kEq, soften_check);
    f.jmp(not_soft);
    f.bind(soften_check);
    const auto do_soften = f.label();
    f.cmpiBr(r2, 'e', Cond::kEq, do_soften);
    f.cmpiBr(r2, 'i', Cond::kEq, do_soften);
    f.cmpiBr(r2, 'y', Cond::kEq, do_soften);
    f.jmp(not_soft);
    f.bind(do_soften);
    f.cmpiBr(r1, 'g', Cond::kEq, is_g);
    f.movi(r0, kSoftC);
    f.jmp(emit1);
    f.bind(is_g);
    f.movi(r0, kSoftG);
    f.jmp(emit1);
    f.bind(not_c);  // (unused label kept for symmetry)
    f.bind(not_soft);

    // Digraph table scan.
    f.movi(r3, 0);  // j
    const auto scan = f.label();
    const auto scan_miss = f.label();
    const auto next_j = f.label();
    f.bind(scan);
    f.cmpiBr(r3, kNumDigraphs, Cond::kGe, scan_miss);
    f.lsli(r12, r3, 1);
    f.ldrbx(r0, r9, r12);   // pattern[0]
    f.cmpBr(r0, r1, Cond::kNe, next_j);
    f.addi(r12, r12, 1);
    f.ldrbx(r0, r9, r12);   // pattern[1]
    f.cmpBr(r0, r2, Cond::kNe, next_j);
    f.addi(r0, r3, kDigraphBase);
    f.jmp(emit2);
    f.bind(next_j);
    f.addi(r3, r3, 1);
    f.jmp(scan);
    f.bind(scan_miss);
    f.jmp(single);

    f.bind(no_pair);
    f.bind(single);
    f.subi(r0, r1, 'a');
    f.addi(r0, r0, kSingleBase);
    f.jmp(emit1);

    f.bind(emit2);
    f.strbx(r0, r6, r8);
    f.addi(r8, r8, 1);
    f.addi(r7, r7, 2);
    f.jmp(loop);
    f.bind(emit1);
    f.strbx(r0, r6, r8);
    f.addi(r8, r8, 1);
    f.addi(r7, r7, 1);
    f.jmp(loop);

    f.bind(done);
    f.la(r0, "phonemes_n");
    f.str(r8, r0);
    f.epilogue({r4, r5, r6, r7, r8, r9});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto text = inputText(size, experimentSeed());
    writeBytes(memory, guestAddr(text_off_), text);
    memory.store32(guestAddr(textn_off_), static_cast<u32>(text.size()));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    std::vector<u8> out = memory.readBlock(guestAddr(outn_off_), 4);
    const auto ph = memory.readBlock(guestAddr(out_off_), kLargeLen);
    out.insert(out.end(), ph.begin(), ph.end());
    return out;
  }

  std::vector<u8> expected(InputSize size) const override {
    std::vector<u8> ph = refPhonemes(size, experimentSeed());
    std::vector<u8> out = u32ToBytes(static_cast<u32>(ph.size()));
    ph.resize(kLargeLen, 0);
    out.insert(out.end(), ph.begin(), ph.end());
    return out;
  }

 private:
  u32 text_off_ = 0;
  u32 textn_off_ = 0;
  u32 out_off_ = 0;
  u32 outn_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeRsynth(u64 seed) {
  return std::make_unique<RsynthWorkload>(seed);
}

}  // namespace wp::workloads
