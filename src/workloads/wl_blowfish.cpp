// blowfish_e / blowfish_d — MiBench security/blowfish: the full Blowfish
// cipher (16-round Feistel network with four 256-entry S-boxes) over a
// byte stream, *including the key schedule* (521 block encryptions
// regenerating P and S), run entirely on the simulated core.
//
// Substitution note (DESIGN.md §5): the canonical initial P/S tables are
// the hexadecimal digits of pi; we seed them from a deterministic PRNG
// shared between guest data and host reference instead. Every computed
// path — key schedule, Feistel rounds, S-box indexing — is identical to
// Schneier's algorithm.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/references.hpp"

namespace wp::workloads {

namespace {

constexpr u64 kTableSeed = 0xb10f15ULL;
constexpr std::size_t kSmallBlocks = 192;
constexpr std::size_t kLargeBlocks = 2048;

std::vector<u8> cipherKey(u64 seed) {
  return randomBytes("blowfish-key", InputSize::kSmall, 16, seed);
}

std::vector<u8> plaintext(InputSize size, u64 seed) {
  return randomBytes("blowfish", size,
                     8 * (size == InputSize::kSmall ? kSmallBlocks
                                                    : kLargeBlocks),
                     seed);
}

u32 leWord(std::span<const u8> b, std::size_t off) {
  return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
         (static_cast<u32>(b[off + 2]) << 16) |
         (static_cast<u32>(b[off + 3]) << 24);
}

std::vector<u8> cipherBytes(InputSize size, u64 seed) {
  const ref::Blowfish bf(cipherKey(seed), kTableSeed);
  const std::vector<u8> pt = plaintext(size, seed);
  std::vector<u8> out(pt.size());
  for (std::size_t off = 0; off < pt.size(); off += 8) {
    u32 l = leWord(pt, off);
    u32 r = leWord(pt, off + 4);
    bf.encryptBlock(l, r);
    for (int i = 0; i < 4; ++i) {
      out[off + i] = static_cast<u8>(l >> (8 * i));
      out[off + 4 + i] = static_cast<u8>(r >> (8 * i));
    }
  }
  return out;
}

class BlowfishWorkload : public Workload {
 public:
  BlowfishWorkload(u64 seed, bool decrypt) : Workload(seed), decrypt_(decrypt) {}

  std::string name() const override {
    return decrypt_ ? "blowfish_d" : "blowfish_e";
  }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    std::array<u32, 18> p{};
    std::array<u32, 1024> s{};
    ref::Blowfish::initialTables(kTableSeed, p, s);
    mb.dataWords("bf_p", p);
    mb.dataWords("bf_s", s);
    const auto key = cipherKey(experimentSeed());
    mb.data("bf_key", key);
    mb.dataWords("bf_keylen",
                 std::array<u32, 1>{static_cast<u32>(key.size())});
    input_off_ = mb.bss("input", 8 * kLargeBlocks);
    nblocks_off_ = mb.bss("nblocks", 4);
    out_off_ = mb.bss("output", 8 * kLargeBlocks);

    emitRoundFunction(mb, /*decrypt=*/false);
    emitRoundFunction(mb, /*decrypt=*/true);
    emitSetkey(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6});
    f.call("bf_setkey");
    f.la(r4, "input");
    f.la(r6, "output");
    f.la(r0, "nblocks");
    f.ldr(r5, r0);
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r5, 0, Cond::kEq, done);
    f.ldr(r0, r4, 0);
    f.ldr(r1, r4, 4);
    f.call(decrypt_ ? "bf_decrypt" : "bf_encrypt");
    f.str(r0, r6, 0);
    f.str(r1, r6, 4);
    f.addi(r4, r4, 8);
    f.addi(r6, r6, 8);
    f.subi(r5, r5, 1);
    f.jmp(loop);
    f.bind(done);
    f.epilogue({r4, r5, r6});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const std::vector<u8> in =
        decrypt_ ? cipherBytes(size, experimentSeed())
                 : plaintext(size, experimentSeed());
    writeBytes(memory, guestAddr(input_off_), in);
    memory.store32(guestAddr(nblocks_off_),
                   static_cast<u32>(in.size() / 8));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), byteLen(InputSize::kLarge));
  }

  std::vector<u8> expected(InputSize size) const override {
    std::vector<u8> e =
        decrypt_ ? plaintext(size, experimentSeed())
                 : cipherBytes(size, experimentSeed());
    e.resize(byteLen(InputSize::kLarge), 0);  // bss tail stays zero
    return e;
  }

 private:
  static std::size_t byteLen(InputSize size) {
    return 8 * (size == InputSize::kSmall ? kSmallBlocks : kLargeBlocks);
  }

  // Emits r6 = F(r0) using r5/r12 as scratch; r3 must hold the S base.
  static void emitFeistel(asmkit::FunctionBuilder& f) {
    using namespace asmkit;
    f.lsri(r5, r0, 24);
    f.lsli(r5, r5, 2);
    f.ldrx(r6, r3, r5);        // S0[a]
    f.lsri(r5, r0, 16);
    f.andi(r5, r5, 0xff);
    f.lsli(r5, r5, 2);
    f.addi(r5, r5, 1024);
    f.ldrx(r12, r3, r5);       // S1[b]
    f.add(r6, r6, r12);
    f.lsri(r5, r0, 8);
    f.andi(r5, r5, 0xff);
    f.lsli(r5, r5, 2);
    f.addi(r5, r5, 2048);
    f.ldrx(r12, r3, r5);       // S2[c]
    f.eor(r6, r6, r12);
    f.andi(r5, r0, 0xff);
    f.lsli(r5, r5, 2);
    f.addi(r5, r5, 3072);
    f.ldrx(r12, r3, r5);       // S3[d]
    f.add(r6, r6, r12);
  }

  // bf_encrypt / bf_decrypt: (r0, r1) = cipher(r0, r1). The 16 Feistel
  // rounds are fully unrolled with immediate P-array offsets, as in
  // Schneier's reference implementation (and any -O2 build of it).
  static void emitRoundFunction(asmkit::ModuleBuilder& mb, bool decrypt) {
    using namespace asmkit;
    auto& f = mb.func(decrypt ? "bf_decrypt" : "bf_encrypt");
    f.push({r5, r6});
    f.la(r2, "bf_p");
    f.la(r3, "bf_s");

    for (int round = 0; round < 16; ++round) {
      const i32 p_off = decrypt ? (17 - round) * 4 : round * 4;
      f.ldr(r5, r2, p_off);
      f.eor(r0, r0, r5);   // xl ^= P[i]
      emitFeistel(f);
      f.eor(r1, r1, r6);   // xr ^= F(xl)
      f.mov(r5, r0);       // swap
      f.mov(r0, r1);
      f.mov(r1, r5);
    }

    f.mov(r5, r0);       // undo final swap
    f.mov(r0, r1);
    f.mov(r1, r5);
    f.ldr(r5, r2, decrypt ? 4 : 64);
    f.eor(r1, r1, r5);
    f.ldr(r5, r2, decrypt ? 0 : 68);
    f.eor(r0, r0, r5);
    f.pop({r5, r6});
    f.ret();
  }

  // bf_setkey: XOR key into P, then regenerate P and S by repeated
  // encryption of the rolling block (Schneier's key schedule).
  static void emitSetkey(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bf_setkey");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r4, "bf_p");
    f.la(r5, "bf_key");
    f.la(r0, "bf_keylen");
    f.ldr(r6, r0);
    f.movi(r7, 0);  // key position
    f.movi(r8, 0);  // P byte offset

    const auto ploop = f.label();
    f.bind(ploop);
    f.movi(r9, 0);   // key word
    f.movi(r10, 4);  // bytes to gather
    const auto bloop = f.label();
    const auto no_wrap = f.label();
    f.bind(bloop);
    f.lsli(r9, r9, 8);
    f.ldrbx(r11, r5, r7);
    f.orr(r9, r9, r11);
    f.addi(r7, r7, 1);
    f.cmpBr(r7, r6, Cond::kLtu, no_wrap);
    f.movi(r7, 0);
    f.bind(no_wrap);
    f.subi(r10, r10, 1);
    f.cmpiBr(r10, 0, Cond::kNe, bloop);
    f.ldrx(r11, r4, r8);
    f.eor(r11, r11, r9);
    f.strx(r11, r4, r8);
    f.addi(r8, r8, 4);
    f.cmpiBr(r8, 72, Cond::kLt, ploop);

    // Regenerate P then S.
    f.movi(r10, 0);  // rolling L
    f.movi(r11, 0);  // rolling R
    f.movi(r8, 0);
    const auto genp = f.label();
    f.bind(genp);
    f.mov(r0, r10);
    f.mov(r1, r11);
    f.call("bf_encrypt");
    f.mov(r10, r0);
    f.mov(r11, r1);
    f.strx(r0, r4, r8);
    f.addi(r9, r8, 4);
    f.strx(r1, r4, r9);
    f.addi(r8, r8, 8);
    f.cmpiBr(r8, 72, Cond::kLt, genp);

    f.la(r4, "bf_s");
    f.movi(r8, 0);
    const auto gens = f.label();
    f.bind(gens);
    f.mov(r0, r10);
    f.mov(r1, r11);
    f.call("bf_encrypt");
    f.mov(r10, r0);
    f.mov(r11, r1);
    f.strx(r0, r4, r8);
    f.addi(r9, r8, 4);
    f.strx(r1, r4, r9);
    f.addi(r8, r8, 8);
    f.cmpiBr(r8, 4096, Cond::kLt, gens);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  bool decrypt_;
  u32 input_off_ = 0;
  u32 nblocks_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeBlowfishE(u64 seed) {
  return std::make_unique<BlowfishWorkload>(seed, false);
}
std::unique_ptr<Workload> makeBlowfishD(u64 seed) {
  return std::make_unique<BlowfishWorkload>(seed, true);
}

}  // namespace wp::workloads
