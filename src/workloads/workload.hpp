// The MiBench-substitute workload suite (paper §5).
//
// Each workload is a real kernel implemented as a WRISC-32 program via
// asmkit, plus a host-side C++ reference implementation. Workloads carry
// two input sets: kSmall (the training input used for profiling) and
// kLarge (the evaluation input), generated deterministically so that
// small != large in both size and content — the profile/evaluate split is
// part of what the paper's technique must survive.
//
// The contract:
//   1. build()                       — produce the IR module (idempotent)
//   2. <link + load image>           — done by the harness
//   3. prepare(memory, size)         — write the input buffers
//   4. <run>                         — simulator executes until HALT
//   5. output(memory)                — read back the result bytes
//   6. expected(size)                — host-computed reference bytes
// A workload is correct when output == expected for both input sizes
// under every layout policy and scheme.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "mem/memory.hpp"

namespace wp::workloads {

enum class InputSize : u8 { kSmall, kLarge };

[[nodiscard]] inline const char* inputSizeName(InputSize s) {
  return s == InputSize::kSmall ? "small" : "large";
}

class Workload {
 public:
  /// @p experiment_seed is the experiment-wide RNG seed, threaded in
  /// explicitly at construction (there is no global): it reaches every
  /// input generator, including key material embedded into the image by
  /// build(). Seed 0 reproduces the historical fixed inputs bit-for-bit.
  /// One instance is internally consistent — build(), prepare() and
  /// expected() all derive from the same seed — so two workloads with
  /// different seeds can be interleaved or run concurrently without
  /// corrupting each other.
  explicit Workload(u64 experiment_seed = 0) : seed_(experiment_seed) {}
  virtual ~Workload() = default;

  [[nodiscard]] u64 experimentSeed() const { return seed_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Builds the program. May be called repeatedly; must be deterministic.
  [[nodiscard]] virtual ir::Module build() = 0;

  /// Writes the input buffers for @p size into @p memory (which already
  /// holds the loaded image).
  virtual void prepare(mem::Memory& memory, InputSize size) const = 0;

  /// Reads the program's result buffer after a run.
  [[nodiscard]] virtual std::vector<u8> output(
      const mem::Memory& memory) const = 0;

  /// Host-reference result for @p size.
  [[nodiscard]] virtual std::vector<u8> expected(InputSize size) const = 0;

 private:
  u64 seed_;
};

/// All 23 benchmarks of the paper's Figure 4, in figure order.
[[nodiscard]] const std::vector<std::string>& suiteNames();

/// Instantiates a workload by name; throws SimError for unknown names.
/// @p experiment_seed seeds the instance's input generation (see
/// Workload); the default 0 keeps the historical fixed inputs.
[[nodiscard]] std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                                     u64 experiment_seed = 0);

}  // namespace wp::workloads
