#include "fault/fault.hpp"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "support/ensure.hpp"

namespace wp::fault {

const char* profileFaultName(ProfileFault f) {
  switch (f) {
    case ProfileFault::kNone:
      return "none";
    case ProfileFault::kTruncated:
      return "truncated";
    case ProfileFault::kScrambled:
      return "scrambled";
    case ProfileFault::kEmpty:
      return "empty";
    case ProfileFault::kBogusIds:
      return "bogus-ids";
  }
  WP_UNREACHABLE("bad profile fault");
}

const char* cellFaultName(CellFault f) {
  switch (f) {
    case CellFault::kNone:
      return "none";
    case CellFault::kTransient:
      return "transient";
    case CellFault::kPersistent:
      return "persistent";
    case CellFault::kCrash:
      return "crash";
    case CellFault::kHang:
      return "hang";
  }
  WP_UNREACHABLE("bad cell fault");
}

void injectCellFault(CellFault kind, u32 failures, unsigned attempt,
                     const char* origin) {
  switch (kind) {
    case CellFault::kNone:
      return;
    case CellFault::kTransient:
      if (attempt < failures) {
        throw SimError("injected transient cell fault (" +
                       std::string(origin) + "): attempt " +
                       std::to_string(attempt + 1) + " of " +
                       std::to_string(failures) +
                       " failing attempt(s) — a retry heals this cell");
      }
      return;
    case CellFault::kPersistent:
      throw SimError("injected persistent cell fault (" +
                     std::string(origin) +
                     "): every attempt fails — this cell must quarantine");
    case CellFault::kCrash:
      if (failures == 0 || attempt < failures) {
        // A real crash, not an exception: SIGKILL cannot be caught,
        // blocked or sanitized away, so the attempt dies exactly like a
        // SIGSEGV'd simulator would. Only a forked worker survives it.
        std::fprintf(stderr,
                     "[wayplace] injected crash cell fault (%s): attempt %u "
                     "dies by SIGKILL\n",
                     origin, attempt + 1);
        ::raise(SIGKILL);
        for (;;) {}  // unreachable; raise cannot fail for SIGKILL
      }
      return;
    case CellFault::kHang:
      // A wedged attempt: never retires an instruction, so the
      // in-process instruction-budget watchdog can never fire. Only the
      // worker parent's wall-clock kill (WP_ISOLATE=1 +
      // WP_CELL_TIMEOUT_MS) ends it.
      std::fprintf(stderr,
                   "[wayplace] injected hang cell fault (%s): attempt %u "
                   "blocks forever\n",
                   origin, attempt + 1);
      for (;;) ::pause();
  }
  WP_UNREACHABLE("bad cell fault");
}

void injectCellFault(const FaultSpec& spec, unsigned attempt) {
  injectCellFault(spec.cell_fault, spec.cell_fault_failures, attempt, "spec");
}

bool parseCellFault(std::string_view spec, std::string_view knob,
                    CellFault& kind, u32& failures, std::string& error) {
  const auto badSpec = [&] {
    error = std::string(knob) + "='" + std::string(spec) +
            "' is not a valid cell fault (expected 'transient[:N]', "
            "'persistent', 'crash[:N]' or 'hang')";
    return false;
  };
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  // Strict failure-count parse for the kinds that accept ":N".
  const auto parseFailures = [&](const char* shape, u32& out) {
    const std::string n(spec.substr(colon + 1));
    errno = 0;
    char* end = nullptr;
    const unsigned long v = std::strtoul(n.c_str(), &end, 10);
    if (n.empty() || *end != '\0' || errno == ERANGE || v == 0 ||
        v > 1000) {
      error = std::string(knob) + "='" + std::string(spec) +
              "' has a bad failure count (expected " + shape +
              " with N in [1, 1000])";
      return false;
    }
    out = static_cast<u32>(v);
    return true;
  };
  if (name == "persistent" && colon == std::string_view::npos) {
    kind = CellFault::kPersistent;
    failures = 1;
  } else if (name == "transient") {
    kind = CellFault::kTransient;
    failures = 1;
    if (colon != std::string_view::npos &&
        !parseFailures("transient[:N]", failures)) {
      return false;
    }
  } else if (name == "crash") {
    kind = CellFault::kCrash;
    // Bare "crash" crashes every attempt (failures = 0); "crash:N"
    // crashes N attempts and then heals — mirroring transient, except
    // the failure is a SIGKILL instead of a catchable SimError.
    failures = 0;
    if (colon != std::string_view::npos &&
        !parseFailures("crash[:N]", failures)) {
      return false;
    }
  } else if (name == "hang" && colon == std::string_view::npos) {
    kind = CellFault::kHang;
    failures = 1;
  } else {
    return badSpec();
  }
  return true;
}

FaultSpec FaultSpec::allClasses(u64 period, u64 seed) {
  FaultSpec s;
  s.period = period;
  s.seed = seed;
  s.flip_way_hint = true;
  s.flip_tlb_wp_bit = true;
  s.clear_tlb_wp_bits = true;
  s.scramble_memo_links = true;
  s.scramble_mru = true;
  s.resize_storm = true;
  return s;
}

FaultInjector::FaultInjector(const FaultSpec& spec, u64 experiment_seed)
    : spec_(spec),
      // splitmix64 decorrelates nearby (seed, experiment_seed) pairs.
      rng_(spec.seed * 0x9e3779b97f4a7c15ULL ^
           experiment_seed * 0xbf58476d1ce4e5b9ULL ^ 0xfa017ULL) {
  WP_ENSURE(spec.period > 0, "FaultSpec.period must be non-zero to inject");
}

void FaultInjector::attach(cache::FetchPath& path) {
  original_area_ = path.config().wp_area_bytes;
  path.attachFaultHook(this);
}

void FaultInjector::onFetch(cache::FetchPath& path) {
  ++fetches_;
  if (fetches_ % spec_.period == 0) injectOne(path);
}

void FaultInjector::injectOne(cache::FetchPath& path) {
  const cache::FetchPath::FaultSurface s = path.faultSurface();
  const bool wp = path.config().scheme == cache::Scheme::kWayPlacement;

  enum Class : u8 {
    kHintFlip,
    kTlbFlip,
    kTlbClear,
    kLinkScramble,
    kMruScramble,
    kResizeStorm,
  };
  std::array<Class, 6> applicable{};
  std::size_t n = 0;
  if (spec_.flip_way_hint && wp) applicable[n++] = kHintFlip;
  if (spec_.flip_tlb_wp_bit && wp) applicable[n++] = kTlbFlip;
  if (spec_.clear_tlb_wp_bits && wp) applicable[n++] = kTlbClear;
  if (spec_.scramble_memo_links && s.memo != nullptr) {
    applicable[n++] = kLinkScramble;
  }
  if (spec_.scramble_mru && !s.mru.empty()) applicable[n++] = kMruScramble;
  if (spec_.resize_storm && wp) applicable[n++] = kResizeStorm;
  if (n == 0) return;

  ++stats_.events;
  switch (applicable[rng_.below(n)]) {
    case kHintFlip:
      s.hint.flip();
      ++stats_.hint_flips;
      break;
    case kTlbFlip:
      if (s.itlb.faultFlipWpBit(static_cast<u32>(
              rng_.below(s.itlb.entryCount())))) {
        ++stats_.tlb_bit_flips;
      }
      break;
    case kTlbClear:
      stats_.tlb_bits_cleared += s.itlb.faultClearWpBits();
      break;
    case kLinkScramble:
      stats_.links_scrambled +=
          s.memo->faultScrambleLinks(rng_, spec_.links_per_event);
      break;
    case kMruScramble: {
      const u32 ways = path.config().icache.ways;
      s.mru[rng_.below(s.mru.size())] = static_cast<u32>(rng_.below(ways));
      ++stats_.mru_scrambles;
      break;
    }
    case kResizeStorm: {
      // Spurious OS policy churn: a burst of bogus page-aligned areas,
      // then the configured area is restored. Every resize flushes the
      // I-TLB and I-cache, so the cost shows up as cold misses only.
      for (u32 i = 0; i < spec_.storm_resizes; ++i) {
        const u32 pages = 1 + static_cast<u32>(rng_.below(32));
        path.resizeWayPlacementArea(pages * mem::kPageBytes);
        ++stats_.resizes;
      }
      path.resizeWayPlacementArea(original_area_);
      ++stats_.resizes;
      break;
    }
  }
}

void corruptProfile(profile::ProfileResult& prof, ProfileFault kind,
                    Rng& rng) {
  switch (kind) {
    case ProfileFault::kNone:
      return;
    case ProfileFault::kTruncated: {
      // Keep the first half of the dump, as if collection was cut short.
      const std::size_t keep = prof.block_counts.size() / 2;
      auto it = prof.block_counts.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(keep));
      prof.block_counts.erase(it, prof.block_counts.end());
      return;
    }
    case ProfileFault::kScrambled: {
      // Permute the counts across the recorded blocks: every id stays
      // legal, so validation cannot catch this — the layout pass simply
      // optimises for the wrong hot set.
      std::vector<u64> counts;
      counts.reserve(prof.block_counts.size());
      for (const auto& [id, c] : prof.block_counts) counts.push_back(c);
      for (std::size_t i = counts.size(); i > 1; --i) {
        std::swap(counts[i - 1], counts[rng.below(i)]);
      }
      std::size_t i = 0;
      for (auto& [id, c] : prof.block_counts) c = counts[i++];
      return;
    }
    case ProfileFault::kEmpty:
      prof.block_counts.clear();
      return;
    case ProfileFault::kBogusIds: {
      const u32 base = prof.block_counts.empty()
                           ? 1000u
                           : prof.block_counts.rbegin()->first + 1;
      for (u32 i = 0; i < 3; ++i) {
        prof.block_counts[base + static_cast<u32>(rng.below(1000))] =
            1 + rng.below(1 << 20);
      }
      return;
    }
  }
  WP_UNREACHABLE("bad profile fault");
}

}  // namespace wp::fault
