// Fault injection & resilience: demonstrates that every piece of
// way-placement state is a *hint*, never a correctness dependency.
//
// The paper's safety argument (§4.1) is that a wrong way-hint bit or a
// wrong per-I-TLB-entry way-placement bit costs at most a cycle or a
// lost energy saving — the architectural result is untouched. The
// FaultInjector makes that claim testable: on a seeded, deterministic
// schedule it flips the way-hint bit, flips/clears I-TLB way-placement
// bits, scrambles way-memoization links and per-set MRU state, forces
// spurious way-placement-area resizes, and damages training profiles.
// The resilience harness (tests/test_fault.cpp, bench/resilience_sweep)
// then asserts the *architectural-equivalence invariant*: the retired
// instruction stream and the workload outputs of a faulted run are
// bit-identical to the fault-free run of the same scheme, while energy
// and delay degrade boundedly.
#pragma once

#include <string>
#include <string_view>

#include "cache/fetch_path.hpp"
#include "profile/profiler.hpp"
#include "support/rng.hpp"

namespace wp::fault {

/// Damage applied to a freshly collected training profile before the
/// layout pass consumes it.
enum class ProfileFault : u8 {
  kNone,
  kTruncated,  ///< second half of the block counts dropped (partial dump)
  kScrambled,  ///< counts permuted across blocks (stale/mismatched dump)
  kEmpty,      ///< no counts at all (missing dump)
  kBogusIds,   ///< counts for block ids the module does not contain
};

[[nodiscard]] const char* profileFaultName(ProfileFault f);

/// Harness-level cell fault: fails whole sweep cells to exercise the
/// supervisor's retry-vs-quarantine paths. Unlike every other fault
/// class this never touches the simulated machine — a healed attempt's
/// results are bit-identical to a never-faulted run of the same cell.
///
/// kTransient/kPersistent throw SimError (a failure the in-process
/// supervisor can catch). kCrash and kHang are *hostile*: the attempt
/// dies by SIGKILL or wedges forever, exactly like a SIGSEGV'd or
/// runaway simulator. They are survivable only under WP_ISOLATE=1,
/// where each attempt runs in a forked worker process — which is the
/// point: they death-test the process-isolation crash domain.
enum class CellFault : u8 {
  kNone,
  kTransient,   ///< early attempts fail, a retry heals the cell
  kPersistent,  ///< every attempt fails — the cell must quarantine
  kCrash,       ///< attempt dies by SIGKILL (failures = 0: every attempt)
  kHang,        ///< attempt never returns; only a watchdog kill ends it
};

[[nodiscard]] const char* cellFaultName(CellFault f);

/// What to inject, and how often. Classes that do not apply to the
/// running scheme (e.g. link scrambling without a memoizer) are skipped
/// automatically, so one spec can be swept across every scheme.
struct FaultSpec {
  u64 period = 0;  ///< fetches between injected events (0 = injector off)
  u64 seed = 0;    ///< mixed with the experiment seed for the schedule

  bool flip_way_hint = false;       ///< invert the global way-hint bit
  bool flip_tlb_wp_bit = false;     ///< invert one I-TLB entry's WP bit
  bool clear_tlb_wp_bits = false;   ///< burst-clear every cached WP bit
  bool scramble_memo_links = false; ///< rot way-memoization links
  bool scramble_mru = false;        ///< corrupt per-set MRU state
  bool resize_storm = false;        ///< spurious WP-area resize storms

  u32 storm_resizes = 3;     ///< resizes per storm event
  u32 links_per_event = 4;   ///< links rotted per scramble event

  ProfileFault profile_fault = ProfileFault::kNone;

  /// Harness-level cell fault (see CellFault). Key material for the
  /// sweep memo but invisible to the simulated machine.
  CellFault cell_fault = CellFault::kNone;
  /// Failing attempts before kTransient/kCrash heal; 0 means "every
  /// attempt" for kCrash (the persistent-crash form). Ignored by kHang.
  u32 cell_fault_failures = 1;

  [[nodiscard]] bool cellFaultEnabled() const {
    return cell_fault != CellFault::kNone;
  }

  [[nodiscard]] bool runtimeEnabled() const {
    return period != 0 &&
           (flip_way_hint || flip_tlb_wp_bit || clear_tlb_wp_bits ||
            scramble_memo_links || scramble_mru || resize_storm);
  }

  /// Every runtime fault class at once — the adversarial default.
  [[nodiscard]] static FaultSpec allClasses(u64 period, u64 seed = 0);
};

/// Counts of what the injector actually did (per class).
struct InjectionStats {
  u64 events = 0;           ///< scheduled injection points that fired
  u64 hint_flips = 0;
  u64 tlb_bit_flips = 0;
  u64 tlb_bits_cleared = 0;
  u64 links_scrambled = 0;
  u64 mru_scrambles = 0;
  u64 resizes = 0;
};

/// Deterministic fault injector: attaches to a FetchPath as its fault
/// hook and, every FaultSpec::period fetches, injects one randomly
/// chosen enabled-and-applicable fault class.
class FaultInjector final : public cache::FetchFaultHook {
 public:
  FaultInjector(const FaultSpec& spec, u64 experiment_seed);

  /// Registers on @p path and records the configured WP area so resize
  /// storms can restore it.
  void attach(cache::FetchPath& path);

  void onFetch(cache::FetchPath& path) override;

  [[nodiscard]] const InjectionStats& stats() const { return stats_; }

 private:
  void injectOne(cache::FetchPath& path);

  FaultSpec spec_;
  Rng rng_;
  u64 fetches_ = 0;
  u32 original_area_ = 0;
  InjectionStats stats_;
};

/// Applies @p kind damage to @p prof, deterministically under @p rng.
/// Pair with profile::validate + the driver's original-layout fallback
/// to show corrupt profiles degrade energy, never correctness.
void corruptProfile(profile::ProfileResult& prof, ProfileFault kind, Rng& rng);

/// Fails 0-based attempt @p attempt of a cell when @p kind says so.
/// kTransient throws SimError for the first @p failures attempts;
/// kPersistent always throws. kCrash raises SIGKILL for the first
/// @p failures attempts (0 = every attempt) and kHang blocks forever —
/// both are survivable only when the attempt runs in a forked worker
/// (WP_ISOLATE=1). Deterministic in its arguments — the supervisor's
/// retry schedule replays identically from the seed. @p origin names
/// the fault's source ("spec" or "WP_CELL_FAULT") in the thrown
/// message.
void injectCellFault(CellFault kind, u32 failures, unsigned attempt,
                     const char* origin);

/// The FaultSpec-level form: injectCellFault(spec.cell_fault, ...).
void injectCellFault(const FaultSpec& spec, unsigned attempt);

/// Parses a cell-fault spec string — "transient[:N]", "persistent",
/// "crash[:N]" or "hang" — into (@p kind, @p failures). Never exits:
/// on garbage it returns false with @p error set to a message naming
/// @p knob (the environment variable or request field the spec came
/// from), so callers choose their own fate — SupervisorConfig::fromEnv
/// exits 1 under the strict WP_* policy, while the sweep service turns
/// the same message into a tagged error reply instead of dying.
[[nodiscard]] bool parseCellFault(std::string_view spec,
                                  std::string_view knob, CellFault& kind,
                                  u32& failures, std::string& error);

}  // namespace wp::fault
