// Ordering pass `call_distance`: Codestitcher-style distance-bounded
// inter-procedural collocation (Lavaee, Criswell & Ding, "Codestitcher:
// inter-procedural basic block layout").
//
// Must-respect chains stay intact; the pass merges the chain holding a
// callee's entry behind the chain holding its hottest call site, so a
// hot call and its target share the front of the binary (and, for this
// paper's purposes, the same way-placement pages). A merge is accepted
// only while the merged cluster stays within params.call_reach_bytes —
// the distance bound that keeps every collocated call short-reach
// instead of greedily gluing the whole program into one cluster.
// Clusters come back heaviest-first as single merged chains, so the
// way-placement area still sees the hottest code first (and a later
// pass sees collocation as an indivisible unit).
#include <algorithm>
#include <map>

#include "layout/passes/passes.hpp"
#include "support/ensure.hpp"

namespace wp::layout::passes {

std::vector<Chain> passCallDistance(const ir::Module& module,
                                    std::vector<Chain>&& chains,
                                    const PassParams& params, u64 /*seed*/) {
  const std::size_t n = chains.size();
  const u32 reach_bytes = params.call_reach_bytes;

  // Block id -> owning chain, and per-chain byte size (repairs excluded:
  // the bound is a budget, not an address promise). Blocks outside the
  // given chains (cold code under a hotness threshold) carry the
  // sentinel and never participate in a merge.
  constexpr u32 kNoChain = ~u32{0};
  std::vector<u32> chain_of(module.blocks.size(), kNoChain);
  std::vector<u64> chain_bytes(n, 0);
  for (u32 ci = 0; ci < n; ++ci) {
    for (const u32 id : chains[ci].blocks) {
      chain_of[id] = ci;
      chain_bytes[ci] += module.blocks[id].insts.size() * 4;
    }
  }

  // Aggregate call edges between chains, weighted by the caller block's
  // execution count. first_seen keeps ties deterministic.
  struct Edge {
    u64 weight = 0;
    u32 from = 0, to = 0;
    u32 first_seen = 0;
  };
  std::map<std::pair<u32, u32>, Edge> edge_map;
  u32 seq = 0;
  module.forEachCallSite([&](const ir::BasicBlock& caller,
                             const ir::Function& callee, u32 /*inst*/) {
    const u32 from = chain_of[caller.id];
    const u32 to = chain_of[callee.block_ids.front()];
    ++seq;
    if (from == to || from == kNoChain || to == kNoChain) return;
    auto [it, inserted] = edge_map.try_emplace(std::pair{from, to});
    Edge& e = it->second;
    if (inserted) {
      e.from = from;
      e.to = to;
      e.first_seen = seq;
    }
    e.weight += caller.exec_count;
  });
  std::vector<Edge> edges;
  edges.reserve(edge_map.size());
  for (const auto& [key, e] : edge_map) {
    if (e.weight > 0) edges.push_back(e);  // cold calls never merge
  }
  std::stable_sort(edges.begin(), edges.end(), [](const Edge& a,
                                                  const Edge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.first_seen < b.first_seen;
  });

  // Merge clusters along the heaviest call edges while the merged
  // cluster fits the reach budget. A cluster is an ordered list of
  // chains; merging appends the callee's cluster behind the caller's.
  std::vector<u32> group_of(n);
  std::vector<std::vector<u32>> members(n);
  std::vector<u64> group_bytes(n), group_weight(n);
  std::vector<u32> group_first(n);  ///< given-order index of the lead chain
  for (u32 ci = 0; ci < n; ++ci) {
    group_of[ci] = ci;
    members[ci] = {ci};
    group_bytes[ci] = chain_bytes[ci];
    group_weight[ci] = chains[ci].weight;
    group_first[ci] = ci;
  }
  for (const Edge& e : edges) {
    const u32 ga = group_of[e.from];
    const u32 gb = group_of[e.to];
    if (ga == gb) continue;
    if (group_bytes[ga] + group_bytes[gb] > reach_bytes) continue;
    for (const u32 ci : members[gb]) group_of[ci] = ga;
    members[ga].insert(members[ga].end(), members[gb].begin(),
                       members[gb].end());
    members[gb].clear();
    group_bytes[ga] += group_bytes[gb];
    group_weight[ga] += group_weight[gb];
    group_first[ga] = std::min(group_first[ga], group_first[gb]);
  }

  // Concatenate clusters heaviest-first (ties: lead chain's given
  // order), chains within a cluster in merge order. Each cluster comes
  // back as one merged chain.
  std::vector<u32> group_ids;
  for (u32 g = 0; g < n; ++g) {
    if (!members[g].empty()) group_ids.push_back(g);
  }
  std::stable_sort(group_ids.begin(), group_ids.end(),
                   [&](const u32 a, const u32 b) {
                     if (group_weight[a] != group_weight[b]) {
                       return group_weight[a] > group_weight[b];
                     }
                     return group_first[a] < group_first[b];
                   });
  std::vector<Chain> out;
  out.reserve(group_ids.size());
  std::size_t placed = 0;
  for (const u32 g : group_ids) {
    Chain merged;
    merged.weight = group_weight[g];
    for (const u32 ci : members[g]) {
      merged.blocks.insert(merged.blocks.end(), chains[ci].blocks.begin(),
                           chains[ci].blocks.end());
    }
    placed += merged.blocks.size();
    out.push_back(std::move(merged));
  }
  std::size_t given = 0;
  for (const Chain& c : chains) given += c.blocks.size();
  WP_ENSURE(placed == given, "call_distance ordering lost blocks");
  return out;
}

}  // namespace wp::layout::passes
