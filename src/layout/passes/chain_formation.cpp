// ChainFormation: the first pipeline stage (paper §3). Basic blocks are
// linked into chains wherever a predefined ordering must be respected —
// fall-through edges (including the not-taken side of conditional
// branches) and call/return-site pairs (a call block's return site is
// its fall-through in this IR). Remaining blocks are singleton chains.
#include "layout/layout.hpp"

#include "support/ensure.hpp"

namespace wp::layout {

std::vector<Chain> formChains(const ir::Module& module) {
  std::vector<Chain> chains;
  for (const ir::Function& f : module.functions) {
    Chain* open = nullptr;
    for (const u32 id : f.block_ids) {
      const ir::BasicBlock& b = module.blocks[id];
      if (open == nullptr) {
        chains.emplace_back();
        open = &chains.back();
      }
      open->blocks.push_back(id);
      // Chain weight = Σ(exec count × block length). A pathological or
      // corrupted profile can push this past 64 bits, which would
      // silently reorder chains — overflow is a loud error instead.
      u64 dynamic = 0;
      WP_ENSURE(!__builtin_mul_overflow(b.exec_count,
                                        static_cast<u64>(b.insts.size()),
                                        &dynamic),
                "chain weight overflow: block '" + b.label +
                    "' exec count x instruction count exceeds 64 bits — "
                    "the profile is not usable");
      WP_ENSURE(!__builtin_add_overflow(open->weight, dynamic, &open->weight),
                "chain weight overflow accumulating block '" + b.label +
                    "' — the profile is not usable");
      if (!b.fallthrough.has_value()) {
        open = nullptr;  // chain ends at an unconditional transfer
      }
    }
    WP_ENSURE(open == nullptr, "function ended inside an open chain");
  }
  return chains;
}

}  // namespace wp::layout
