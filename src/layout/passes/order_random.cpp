// Ordering pass `random`: seeded Fisher–Yates shuffle of the given
// blocks, deliberately ignoring chain boundaries — the ablation floor.
// It maximally exercises Emission's fall-through repair and bounds how
// bad a layout the way-placement hardware can be handed.
#include "layout/passes/passes.hpp"
#include "support/rng.hpp"

namespace wp::layout::passes {

std::vector<Chain> passRandom(const ir::Module& module,
                              std::vector<Chain>&& chains,
                              const PassParams& /*params*/, u64 seed) {
  // Flatten whatever the pipeline handed us. Formation order yields
  // ascending block ids, so the historical whole-module shuffle is the
  // hot_threshold=0 case of this.
  std::vector<u32> ids;
  ids.reserve(module.blocks.size());
  for (const Chain& c : chains) {
    ids.insert(ids.end(), c.blocks.begin(), c.blocks.end());
  }
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  std::vector<Chain> out;
  out.reserve(ids.size());
  for (const u32 id : ids) {
    const ir::BasicBlock& b = module.blocks[id];
    out.push_back(Chain{{id}, b.exec_count * b.insts.size()});
  }
  return out;
}

}  // namespace wp::layout::passes
