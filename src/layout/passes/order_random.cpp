// ChainOrdering `random`: seeded Fisher–Yates shuffle of every block
// id, deliberately ignoring the chains — the ablation floor. It
// maximally exercises Emission's fall-through repair and bounds how bad
// a layout the way-placement hardware can be handed.
#include "layout/passes/passes.hpp"
#include "support/rng.hpp"

namespace wp::layout::passes {

std::vector<u32> orderRandom(const ir::Module& module,
                             std::vector<Chain>&& /*chains*/, u64 seed) {
  std::vector<u32> order;
  order.reserve(module.blocks.size());
  for (u32 id = 0; id < module.blocks.size(); ++id) order.push_back(id);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  return order;
}

}  // namespace wp::layout::passes
