// Internal interface between the pass pipeline's stages. Each ordering
// pass lives in its own translation unit under src/layout/passes/; the
// registry in strategy.cpp binds strategy names to pass sequences.
// Nothing here is part of the public layout API.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "layout/strategy.hpp"

namespace wp::layout::passes {

// --- ChainOrdering stage -------------------------------------------------
// Contract: each pass consumes a chain list (blocks within a chain are
// immovable relative to each other, except where a pass deliberately
// breaks them and accepts the Emission repairs) and returns the
// reordered — possibly merged or split — chain list. Concatenating the
// returned chains is the placement; passes compose left to right
// through PassParams::passes. A pass must preserve the block set it was
// given: the pipeline hands hot chains only when a hotness threshold is
// active, so a pass may never assume it sees the whole module.

/// Chains unchanged — with the formation order this reproduces the
/// authored program exactly (the baseline binary, and the binary the
/// way-memoization runs keep untouched).
std::vector<Chain> passOriginal(const ir::Module& module,
                                std::vector<Chain>&& chains,
                                const PassParams& params, u64 seed);

/// The paper's §3 ordering: heaviest chain first, ties in prior order.
std::vector<Chain> passWayPlacement(const ir::Module& module,
                                    std::vector<Chain>&& chains,
                                    const PassParams& params, u64 seed);

/// Seeded Fisher–Yates shuffle of the given blocks as singleton chains,
/// ignoring chain boundaries — the ablation floor that exercises
/// Emission's fall-through repair.
std::vector<Chain> passRandom(const ir::Module& module,
                              std::vector<Chain>&& chains,
                              const PassParams& params, u64 seed);

/// Codestitcher-style distance-bounded call collocation within
/// params.call_reach_bytes; merged clusters come back heaviest-first as
/// single chains.
std::vector<Chain> passCallDistance(const ir::Module& module,
                                    std::vector<Chain>&& chains,
                                    const PassParams& params, u64 seed);

/// Greedy ExtTSP-scored chain concatenation under the params' jump
/// windows and weights; surviving chains come back heaviest-first.
std::vector<Chain> passExtTsp(const ir::Module& module,
                              std::vector<Chain>&& chains,
                              const PassParams& params, u64 seed);

/// One registered ordering pass: a PassParams::passes name bound to its
/// transform. needs_profile marks passes that are meaningless without
/// block exec counts; a spec needs a profile iff any of its passes do.
struct OrderingPass {
  std::string name;
  bool needs_profile = false;
  std::vector<Chain> (*run)(const ir::Module&, std::vector<Chain>&&,
                            const PassParams&, u64) = nullptr;
};

/// All registered ordering passes, in registration order.
[[nodiscard]] const std::vector<const OrderingPass*>& orderingPasses();

/// Pass lookup by name; nullptr when unknown.
[[nodiscard]] const OrderingPass* findOrderingPass(std::string_view name);

/// "a, b, c" over the registered pass names, for error messages.
[[nodiscard]] std::string joinedOrderingPassNames();

// --- Emission stage ------------------------------------------------------

/// link() plus a count of the synthetic unconditional branches inserted
/// to repair fall-throughs the order broke. @p repairs may be null.
mem::Image emit(const ir::Module& module, std::span<const u32> block_order,
                u64* repairs);

}  // namespace wp::layout::passes
