// Internal interface between the pass pipeline's stages. Each ordering
// lives in its own translation unit under src/layout/passes/; the
// registry in strategy.cpp binds them to names. Nothing here is part of
// the public layout API.
#pragma once

#include <span>
#include <vector>

#include "layout/layout.hpp"

namespace wp::layout::passes {

// --- ChainOrdering stage -------------------------------------------------
// Contract: consume the must-respect chains of ChainFormation (blocks
// within a chain are immovable relative to each other, except where an
// ordering deliberately breaks them and accepts the Emission repairs)
// and return a permutation of every block id in the module.

/// Chains in formation order — reproduces the authored program order.
std::vector<u32> orderOriginal(const ir::Module& module,
                               std::vector<Chain>&& chains, u64 seed);

/// The paper's §3 ordering: heaviest chain first, ties in formation
/// order.
std::vector<u32> orderWayPlacement(const ir::Module& module,
                                   std::vector<Chain>&& chains, u64 seed);

/// Seeded Fisher–Yates shuffle of all block ids, ignoring chains — the
/// ablation floor that exercises Emission's fall-through repair.
std::vector<u32> orderRandom(const ir::Module& module,
                             std::vector<Chain>&& chains, u64 seed);

/// Codestitcher-style distance-bounded call collocation at the default
/// reach (layout::kCallDistanceReachBytes).
std::vector<u32> orderCallDistance(const ir::Module& module,
                                   std::vector<Chain>&& chains, u64 seed);

/// Greedy ExtTSP-scored chain concatenation.
std::vector<u32> orderExtTsp(const ir::Module& module,
                             std::vector<Chain>&& chains, u64 seed);

// --- Emission stage ------------------------------------------------------

/// link() plus a count of the synthetic unconditional branches inserted
/// to repair fall-throughs the order broke. @p repairs may be null.
mem::Image emit(const ir::Module& module, std::span<const u32> block_order,
                u64* repairs);

}  // namespace wp::layout::passes
