// ChainOrdering `original`: chains in formation order. ChainFormation
// walks functions and blocks in authored order and never skips a block,
// so concatenating its chains reproduces the authored program exactly —
// the baseline binary, and the binary the way-memoization runs keep
// untouched.
#include "layout/passes/passes.hpp"

namespace wp::layout::passes {

std::vector<u32> orderOriginal(const ir::Module& module,
                               std::vector<Chain>&& chains, u64 /*seed*/) {
  std::vector<u32> order;
  order.reserve(module.blocks.size());
  for (const Chain& c : chains) {
    order.insert(order.end(), c.blocks.begin(), c.blocks.end());
  }
  return order;
}

}  // namespace wp::layout::passes
