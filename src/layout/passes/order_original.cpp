// Ordering pass `original`: chains unchanged. ChainFormation walks
// functions and blocks in authored order and never skips a block, so
// concatenating its chains reproduces the authored program exactly —
// the baseline binary, and the binary the way-memoization runs keep
// untouched.
#include "layout/passes/passes.hpp"

namespace wp::layout::passes {

std::vector<Chain> passOriginal(const ir::Module& /*module*/,
                                std::vector<Chain>&& chains,
                                const PassParams& /*params*/, u64 /*seed*/) {
  return std::move(chains);
}

}  // namespace wp::layout::passes
