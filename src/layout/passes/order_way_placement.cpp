// ChainOrdering `way_placement`: the paper's §3 ordering. Chains are
// concatenated heaviest-first so the hottest code lands at the start of
// the binary where the way-placement area lives. Ties keep formation
// order for determinism.
#include <algorithm>

#include "layout/passes/passes.hpp"

namespace wp::layout::passes {

std::vector<u32> orderWayPlacement(const ir::Module& module,
                                   std::vector<Chain>&& chains,
                                   u64 /*seed*/) {
  std::stable_sort(chains.begin(), chains.end(),
                   [](const Chain& a, const Chain& b) {
                     return a.weight > b.weight;
                   });
  std::vector<u32> order;
  order.reserve(module.blocks.size());
  for (const Chain& c : chains) {
    order.insert(order.end(), c.blocks.begin(), c.blocks.end());
  }
  return order;
}

}  // namespace wp::layout::passes
