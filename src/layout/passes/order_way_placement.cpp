// Ordering pass `way_placement`: the paper's §3 ordering. Chains are
// concatenated heaviest-first so the hottest code lands at the start of
// the binary where the way-placement area lives. Ties keep the prior
// order for determinism (formation order when this is the first pass).
#include <algorithm>

#include "layout/passes/passes.hpp"

namespace wp::layout::passes {

std::vector<Chain> passWayPlacement(const ir::Module& /*module*/,
                                    std::vector<Chain>&& chains,
                                    const PassParams& /*params*/,
                                    u64 /*seed*/) {
  std::stable_sort(chains.begin(), chains.end(),
                   [](const Chain& a, const Chain& b) {
                     return a.weight > b.weight;
                   });
  return std::move(chains);
}

}  // namespace wp::layout::passes
