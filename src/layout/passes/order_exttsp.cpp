// Ordering pass `exttsp`: greedy chain concatenation driven by the
// Extended-TSP score (Newell & Pupyrev, "Improved basic block reordering").
//
// ExtTSP generalises maximising fall-throughs: an edge also earns partial
// credit when its target lands close enough for a short jump — within
// params.tsp_forward_bytes forward or params.tsp_backward_bytes backward
// (historically 1024/640), decaying linearly with distance and scaled by
// the direction's weight. We score inter-chain branch edges
// (fall-through edges are intra-chain by construction, so concatenation
// cannot change their score) with the source block's execution count as
// the edge weight, and repeatedly merge the ordered chain pair with the
// highest positive score until no merge helps. Remaining chains come
// back heaviest-first, matching the paper's ordering for whatever the
// greedy phase left apart.
#include <algorithm>
#include <map>

#include "layout/passes/passes.hpp"
#include "support/ensure.hpp"

namespace wp::layout::passes {
namespace {

/// ExtTSP credit for one edge: src block ends at `src_end`, dst block
/// starts at `dst_addr`, both byte offsets in the same (merged) chain.
double edgeScore(const PassParams& p, u64 weight, u64 src_end,
                 u64 dst_addr) {
  const double w = static_cast<double>(weight);
  if (dst_addr == src_end) return w;
  if (dst_addr > src_end) {
    const double reach = static_cast<double>(p.tsp_forward_bytes);
    const double d = static_cast<double>(dst_addr - src_end);
    if (d >= reach || reach == 0.0) return 0.0;
    return w * p.tsp_forward_weight * (1.0 - d / reach);
  }
  const double reach = static_cast<double>(p.tsp_backward_bytes);
  const double d = static_cast<double>(src_end - dst_addr);
  if (d >= reach || reach == 0.0) return 0.0;
  return w * p.tsp_backward_weight * (1.0 - d / reach);
}

struct BranchEdge {
  u32 src = 0, dst = 0;
  u64 weight = 0;
};

}  // namespace

std::vector<Chain> passExtTsp(const ir::Module& module,
                              std::vector<Chain>&& chains,
                              const PassParams& params, u64 /*seed*/) {
  const std::size_t n = chains.size();

  // Byte offset of every block within its chain, and per-chain sizes.
  // Blocks outside the given chains (cold code under a hotness
  // threshold) carry the sentinel; their edges are ignored.
  constexpr u32 kNoChain = ~u32{0};
  std::vector<u32> chain_of(module.blocks.size(), kNoChain);
  std::vector<u64> block_off(module.blocks.size(), 0);
  std::vector<u64> chain_bytes(n, 0);
  auto reindex = [&](u32 ci) {
    u64 off = 0;
    for (const u32 id : chains[ci].blocks) {
      chain_of[id] = ci;
      block_off[id] = off;
      off += module.blocks[id].insts.size() * 4;
    }
    chain_bytes[ci] = off;
  };
  for (u32 ci = 0; ci < n; ++ci) reindex(ci);

  // Inter-chain branch edges, weighted by the source block's execution
  // count (we profile blocks, not edges). Intra-chain edges are scored
  // identically before and after any concatenation, so they drop out of
  // every gain comparison.
  std::vector<BranchEdge> edges;
  module.forEachBranchEdge(
      [&](const ir::BasicBlock& src, u32 target, u32 /*inst*/) {
        if (src.exec_count == 0) return;
        if (chain_of[src.id] == kNoChain || chain_of[target] == kNoChain) {
          return;
        }
        edges.push_back({src.id, target, src.exec_count});
      });

  // Score of placing chain `a` immediately before chain `b`, counting
  // only edges that cross between them.
  auto concatScore = [&](u32 a, u32 b) {
    double score = 0.0;
    for (const BranchEdge& e : edges) {
      const u32 cs = chain_of[e.src];
      const u32 cd = chain_of[e.dst];
      u64 src_end = 0, dst_addr = 0;
      if (cs == a && cd == b) {
        src_end = block_off[e.src] + module.blocks[e.src].insts.size() * 4;
        dst_addr = chain_bytes[a] + block_off[e.dst];
      } else if (cs == b && cd == a) {
        src_end = chain_bytes[a] + block_off[e.src] +
                  module.blocks[e.src].insts.size() * 4;
        dst_addr = block_off[e.dst];
      } else {
        continue;
      }
      score += edgeScore(params, e.weight, src_end, dst_addr);
    }
    return score;
  };

  // Greedy merge rounds: pick the ordered pair with the best positive
  // score, append `b` onto `a`, repeat. Candidate pairs are exactly the
  // chain pairs connected by at least one live edge.
  std::vector<bool> alive(n, true);
  while (true) {
    std::map<std::pair<u32, u32>, bool> candidates;
    for (const BranchEdge& e : edges) {
      const u32 cs = chain_of[e.src];
      const u32 cd = chain_of[e.dst];
      if (cs == cd) continue;
      candidates[{std::min(cs, cd), std::max(cs, cd)}] = true;
    }
    double best = 0.0;
    u32 best_a = 0, best_b = 0;
    bool found = false;
    for (const auto& [pair, _] : candidates) {
      const auto [x, y] = pair;
      for (const auto& [a, b] : {std::pair{x, y}, std::pair{y, x}}) {
        const double s = concatScore(a, b);
        // Strictly-greater keeps the first (lowest chain-index) pair on
        // ties, so the result is deterministic.
        if (s > best) {
          best = s;
          best_a = a;
          best_b = b;
          found = true;
        }
      }
    }
    if (!found) break;
    chains[best_a].blocks.insert(chains[best_a].blocks.end(),
                                 chains[best_b].blocks.begin(),
                                 chains[best_b].blocks.end());
    chains[best_a].weight += chains[best_b].weight;
    chains[best_b].blocks.clear();
    chains[best_b].weight = 0;
    alive[best_b] = false;
    reindex(best_a);
  }

  // Survivors come back heaviest-first (ties: given order).
  std::vector<u32> order_chains;
  for (u32 ci = 0; ci < n; ++ci) {
    if (alive[ci]) order_chains.push_back(ci);
  }
  std::stable_sort(order_chains.begin(), order_chains.end(),
                   [&](const u32 a, const u32 b) {
                     return chains[a].weight > chains[b].weight;
                   });
  std::vector<Chain> out;
  out.reserve(order_chains.size());
  for (const u32 ci : order_chains) {
    out.push_back(std::move(chains[ci]));
  }
  return out;
}

}  // namespace wp::layout::passes
