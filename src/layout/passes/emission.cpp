// Emission: the final pipeline stage. Lays out a block order, repairs
// the fall-throughs the order broke with synthetic unconditional
// branches, resolves every relocation and encodes the image. Any
// permutation of the module's blocks is a valid input — correctness is
// the linker's job, orderings only decide quality.
#include <map>

#include "layout/passes/passes.hpp"
#include "support/ensure.hpp"

namespace wp::layout {

namespace passes {

mem::Image emit(const ir::Module& module, std::span<const u32> block_order,
                u64* repairs) {
  module.validate();
  WP_ENSURE(block_order.size() == module.blocks.size(),
            "placement order must cover every block");

  // Pass 1: decide repairs and assign addresses.
  // A block whose fall-through successor is not placed immediately after
  // it gets a synthetic `b successor` appended.
  std::vector<bool> needs_repair(module.blocks.size(), false);
  u64 repair_count = 0;
  for (std::size_t i = 0; i < block_order.size(); ++i) {
    const ir::BasicBlock& b = module.blocks[block_order[i]];
    if (!b.fallthrough.has_value()) continue;
    const bool next_is_ft =
        i + 1 < block_order.size() && block_order[i + 1] == *b.fallthrough;
    needs_repair[b.id] = !next_is_ft;
    if (!next_is_ft) ++repair_count;
  }
  if (repairs != nullptr) *repairs = repair_count;

  std::vector<u32> addr(module.blocks.size(), 0);
  u32 pc = mem::kCodeBase;
  for (const u32 id : block_order) {
    addr[id] = pc;
    const ir::BasicBlock& b = module.blocks[id];
    pc += static_cast<u32>(b.insts.size()) * 4;
    if (needs_repair[id]) pc += 4;
  }
  const u32 code_size = pc - mem::kCodeBase;
  WP_ENSURE(mem::kCodeBase + code_size <= mem::kDataBase,
            "program too large for the code segment");

  // Function entry addresses.
  std::map<std::string, u32> function_addr;
  for (const ir::Function& f : module.functions) {
    function_addr[f.name] = addr[f.block_ids[0]];
  }

  // Pass 2: resolve and encode.
  mem::Image image;
  image.code.reserve(code_size);
  const auto emitWord = [&image](u32 word) {
    image.code.push_back(static_cast<u8>(word));
    image.code.push_back(static_cast<u8>(word >> 8));
    image.code.push_back(static_cast<u8>(word >> 16));
    image.code.push_back(static_cast<u8>(word >> 24));
  };
  const auto branchOffset = [](u32 from_pc, u32 to_addr) {
    const i64 delta = static_cast<i64>(to_addr) - (static_cast<i64>(from_pc) + 4);
    WP_ENSURE(delta % 4 == 0, "misaligned branch target");
    return static_cast<i32>(delta / 4);
  };

  for (const u32 id : block_order) {
    const ir::BasicBlock& b = module.blocks[id];
    u32 inst_pc = addr[id];
    image.block_addr[id] = inst_pc;

    for (const ir::Inst& inst : b.insts) {
      isa::Instruction raw = inst.raw;
      switch (inst.reloc) {
        case ir::Reloc::kNone:
          break;
        case ir::Reloc::kBlockBranch:
          raw.imm = branchOffset(inst_pc, addr[inst.target_block]);
          break;
        case ir::Reloc::kFuncCall:
          raw.imm = branchOffset(inst_pc, function_addr.at(inst.target_func));
          break;
        case ir::Reloc::kDataLo:
        case ir::Reloc::kDataHi: {
          const ir::DataSymbol* sym = module.findSymbol(inst.data_symbol);
          const u32 value = mem::kDataBase + sym->offset +
                            static_cast<u32>(inst.data_addend);
          raw.imm = inst.reloc == ir::Reloc::kDataLo
                        ? static_cast<i32>(value & 0xffffu)
                        : static_cast<i32>((value >> 16) & 0xffffu);
          break;
        }
      }
      emitWord(isa::encode(raw));
      inst_pc += 4;
    }

    if (needs_repair[id]) {
      isa::Instruction repair{isa::Opcode::kB, 0, 0, 0,
                              branchOffset(inst_pc, addr[*b.fallthrough])};
      emitWord(isa::encode(repair));
      inst_pc += 4;
    }
    image.block_end[id] = inst_pc;
  }

  WP_ENSURE(image.code.size() == code_size, "linker size accounting broke");

  image.data = module.data_init;
  image.function_addr = function_addr;
  image.entry = function_addr.at(module.entry_function);
  return image;
}

}  // namespace passes

mem::Image link(const ir::Module& module, std::span<const u32> block_order) {
  return passes::emit(module, block_order, nullptr);
}

}  // namespace wp::layout
