// Legacy layout API, now a shim over the pass pipeline. The enum-based
// Policy interface predates the strategy registry; it is kept so older
// call sites (and the round-trip guarantee policyName -> parseStrategy)
// continue to work. Implementation lives in:
//   passes/chain_formation.cpp   formChains
//   passes/order_*.cpp           the ChainOrdering stage
//   passes/emission.cpp          link / emit
//   strategy.cpp                 the registry and runPipeline
#include "layout/layout.hpp"

#include "layout/strategy.hpp"
#include "support/ensure.hpp"

namespace wp::layout {

const char* policyName(Policy p) {
  switch (p) {
    case Policy::kOriginal:     return "original";
    case Policy::kWayPlacement: return "way-placement";
    case Policy::kRandom:       return "random";
  }
  WP_UNREACHABLE("bad policy");
}

std::vector<u32> orderBlocks(const ir::Module& module, Policy policy,
                             u64 seed) {
  // policyName's "way-placement" spelling resolves via the registered
  // alias; the other two names are canonical.
  const LayoutStrategy& strategy = parseStrategy(policyName(policy));
  std::vector<u32> order = strategy.order(module, formChains(module), seed);
  WP_ENSURE(order.size() == module.blocks.size(),
            "placement order must cover every block");
  return order;
}

mem::Image linkWithPolicy(const ir::Module& module, Policy policy, u64 seed) {
  return link(module, orderBlocks(module, policy, seed));
}

}  // namespace wp::layout
