// Link-time code placement — the paper's compiler contribution (§3).
//
// Chain formation: basic blocks are linked into chains wherever a
// predefined ordering must be respected — fall-through edges (including
// the not-taken side of conditional branches) and call/return-site pairs
// (a call block's return site is its fall-through in this IR). Remaining
// blocks are singleton chains. Each chain is weighted by the sum of its
// blocks' dynamic instruction counts (execution count x block length);
// chains are then concatenated heaviest-first, so the hottest code lands
// at the start of the binary where the way-placement area lives.
//
// The placement machinery is a three-stage pass pipeline —
// ChainFormation → ChainOrdering → Emission — with the ordering stage
// pluggable (and parameterizable) through the strategy registry: see
// strategy.hpp for strategies, specs and runPipeline(). This header
// holds only the pieces shared by every stage: the Chain type,
// ChainFormation itself, and the Emission-stage linker.
#pragma once

#include <span>
#include <vector>

#include "ir/module.hpp"
#include "mem/image.hpp"

namespace wp::layout {

struct Chain {
  std::vector<u32> blocks;
  u64 weight = 0;  ///< sum over blocks of exec_count * instruction count
};

/// Forms the must-respect chains of @p module (paper §3).
[[nodiscard]] std::vector<Chain> formChains(const ir::Module& module);

/// Lays out @p block_order (a permutation of all block ids), repairs
/// broken fall-throughs with synthetic unconditional branches, resolves
/// every relocation and emits the final image.
[[nodiscard]] mem::Image link(const ir::Module& module,
                              std::span<const u32> block_order);

}  // namespace wp::layout
