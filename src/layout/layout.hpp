// Link-time code placement — the paper's compiler contribution (§3).
//
// Chain formation: basic blocks are linked into chains wherever a
// predefined ordering must be respected — fall-through edges (including
// the not-taken side of conditional branches) and call/return-site pairs
// (a call block's return site is its fall-through in this IR). Remaining
// blocks are singleton chains. Each chain is weighted by the sum of its
// blocks' dynamic instruction counts (execution count x block length);
// chains are then concatenated heaviest-first, so the hottest code lands
// at the start of the binary where the way-placement area lives.
//
// The placement machinery is a three-stage pass pipeline —
// ChainFormation → ChainOrdering → Emission — with the ordering stage
// pluggable through the strategy registry (see strategy.hpp). This
// header keeps the original enum-based Policy API as a thin shim over
// that registry:
//   kOriginal      — authored order (the baseline binary; also used for
//                    the way-memoization runs, which keep the original
//                    program untouched),
//   kWayPlacement  — the paper's heaviest-first chain order,
//   kRandom        — a layout ablation that shuffles blocks arbitrarily,
//                    exercising the linker's fall-through repair.
// The registry adds further orderings (call_distance, exttsp) that have
// no Policy enumerator; use strategy.hpp to reach them.
#pragma once

#include <span>
#include <vector>

#include "ir/module.hpp"
#include "mem/image.hpp"

namespace wp::layout {

enum class Policy : u8 { kOriginal, kWayPlacement, kRandom };

[[nodiscard]] const char* policyName(Policy p);

struct Chain {
  std::vector<u32> blocks;
  u64 weight = 0;  ///< sum over blocks of exec_count * instruction count
};

/// Forms the must-respect chains of @p module (paper §3).
[[nodiscard]] std::vector<Chain> formChains(const ir::Module& module);

/// Produces the block placement order for @p policy. @p seed only affects
/// kRandom.
[[nodiscard]] std::vector<u32> orderBlocks(const ir::Module& module,
                                           Policy policy, u64 seed = 0);

/// Lays out @p block_order (a permutation of all block ids), repairs
/// broken fall-throughs with synthetic unconditional branches, resolves
/// every relocation and emits the final image.
[[nodiscard]] mem::Image link(const ir::Module& module,
                              std::span<const u32> block_order);

/// Convenience: orderBlocks + link.
[[nodiscard]] mem::Image linkWithPolicy(const ir::Module& module,
                                        Policy policy, u64 seed = 0);

}  // namespace wp::layout
