// Layout strategies: the pluggable ChainOrdering stage of the layout
// pass pipeline (ChainFormation → ChainOrdering → Emission).
//
// The paper's compiler contribution (§3) is one ordering — concatenate
// the must-respect chains heaviest-first — but the interesting
// scientific question for this reproduction is how much of the energy
// saving depends on the *quality* of the hot-code ordering feeding the
// way-placement area. So orderings are first-class, registered by name
// and selectable per run (`SchemeSpec::layout`, `WP_LAYOUT=<name>`):
//
//   original       authored block order (the baseline binary),
//   way_placement  the paper's heaviest-first chain concatenation,
//   random         seeded shuffle of all blocks (layout ablation floor),
//   call_distance  Codestitcher-style distance-bounded collocation:
//                  merges a callee's hot chain behind its heaviest call
//                  site whenever the merged cluster stays within a
//                  configurable reach (Lavaee et al.),
//   exttsp         greedy chain concatenation maximizing the ExtTSP
//                  score, which values short forward jumps above raw
//                  fall-through count (Newell & Pupyrev),
//   autotuned      the measured-energy autotuner's best-found pipeline
//                  over the full suite (see driver/autotune.hpp).
//
// Since PR 9 every ordering knob is data, not a compile-time constant:
// a strategy is a (name, PassParams) pair, where PassParams carries the
// ordering-pass sequence and every per-pass parameter (hotness
// threshold, collocation reach, ExtTSP windows/weights). Specs have a
// canonical string form — `name` when the params are the registered
// defaults, `name{key=value,...}` otherwise — that round-trips through
// resolveStrategy() and is what flows into SweepExecutor cell keys,
// checkpoint records and the result store, so tuned cells memoize and
// resume exactly like default ones (Nobre et al.'s phase-ordering
// search needs nothing more than this).
//
// Every pipeline run emits a LayoutReport — chains formed, fall-through
// repairs the linker had to insert, and the placed dynamic-instruction
// profile — so sweeps can explain *why* a layout wins, not just that it
// does. Reports flow through RunResult into WP_JSON / WP_TRACE.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "layout/layout.hpp"

namespace wp::layout {

/// What one pass-pipeline run did to a module. Host-side observability:
/// nothing here feeds back into the simulated machine.
struct LayoutReport {
  std::string strategy;  ///< canonical spec of the ordering that ran
  u64 chains = 0;        ///< must-respect chains formed (stage 1)
  u64 repairs = 0;       ///< fall-through branches link() materialized

  /// Placement of every block: where it landed and how hot it is.
  struct Span {
    u32 addr = 0;   ///< placed address of the block's first instruction
    u32 insts = 0;  ///< authored instructions (repairs excluded)
    u64 exec = 0;   ///< profiled entry count of the block
  };
  std::vector<Span> spans;  ///< indexed by block id

  /// Profiled dynamic instructions over all spans (exec × insts).
  [[nodiscard]] u64 dynamicInstructions() const;

  /// Fraction of profiled dynamic instructions whose placed address
  /// falls within the first @p area_bytes of the code segment — i.e.
  /// inside a way-placement area of that size. Blocks straddling the
  /// boundary count instruction-by-instruction. 0 when the module
  /// carries no profile.
  [[nodiscard]] double coverage(u32 area_bytes) const;
};

/// A linked image plus the report of the pipeline run that produced it.
struct LayoutResult {
  mem::Image image;
  LayoutReport report;
};

/// Every tunable of the ChainOrdering stage. The registered strategies
/// are just named defaults over this struct; the autotuner and
/// WP_LAYOUT_PARAMS search/override the same fields. Field defaults are
/// the historical compile-time constants, so a default-constructed
/// PassParams (plus a pass list) reproduces the pre-parameterization
/// images bit-for-bit.
struct PassParams {
  /// The ordering-pass sequence, applied left to right over the chain
  /// list (see passes::orderingPasses() for the valid names). Composing
  /// passes is meaningful: e.g. {"call_distance", "way_placement"}
  /// collocates call clusters first, then sorts the clusters
  /// heaviest-first.
  std::vector<std::string> passes;
  /// ChainFormation hotness threshold: chains whose weight (profiled
  /// dynamic instructions) is below this skip the ordering passes
  /// entirely and are appended behind the placed code in formation
  /// order. 0 = every chain participates (the historical behavior).
  u64 chain_hot_threshold = 0;
  /// call_distance: byte budget a merged collocation cluster must stay
  /// within (Codestitcher's distance bound).
  u32 call_reach_bytes = 4096;
  /// exttsp: forward/backward jump windows in bytes, and the credit a
  /// short non-fall-through jump earns relative to a fall-through.
  u32 tsp_forward_bytes = 1024;
  u32 tsp_backward_bytes = 640;
  double tsp_forward_weight = 0.1;
  double tsp_backward_weight = 0.1;

  bool operator==(const PassParams&) const = default;
};

/// One registered ChainOrdering: a name bound to default PassParams.
/// The ordering passes themselves live in passes/ (see
/// passes::OrderingPass); a strategy is complete configuration, not
/// code.
struct LayoutStrategy {
  std::string name;     ///< canonical registry name (the WP_LAYOUT value)
  std::string alias;    ///< accepted legacy spelling ("" = none)
  std::string summary;  ///< one-line description for --help style output
  std::string source;   ///< the paper the ordering comes from
  /// True for orderings that are meaningless without block exec counts;
  /// on an unusable training profile these fall back to the original
  /// layout (a bad profile costs energy, never correctness). Always
  /// equals "any pass in params.passes needs a profile".
  bool needs_profile = false;
  PassParams params;    ///< registered defaults for this strategy
};

/// A fully resolved ordering configuration: a registered base strategy
/// plus (possibly overridden) params. This — not LayoutStrategy — is
/// what runs flow through: SchemeSpec::layout strings resolve to one,
/// and its canonical() form is cell-key/checkpoint/store material.
struct StrategySpec {
  std::string name;  ///< canonical base-strategy name
  /// Derived from the pass list (any pass that needs a profile).
  bool needs_profile = false;
  PassParams params;

  bool operator==(const StrategySpec&) const = default;

  /// Canonical string form: the bare base name when params equal the
  /// registered defaults, else `name{key=value,...}` listing exactly
  /// the overridden keys in a fixed key order (pass lists join with
  /// '+', doubles print shortest-round-trip). resolveStrategy() of the
  /// result reproduces this spec exactly, and equal specs — however
  /// they were written — canonicalize to equal strings, which is why
  /// cell keys and digests may use it.
  [[nodiscard]] std::string canonical() const;
};

/// All registered strategies, in registration order (stable across runs;
/// `original` is always first).
[[nodiscard]] const std::vector<const LayoutStrategy*>& strategies();

/// Canonical names, in registration order.
[[nodiscard]] std::vector<std::string> strategyNames();

/// Looks @p name up by canonical name or alias; nullptr when unknown.
/// Exact names only — spec strings with a `{...}` suffix go through
/// resolveStrategy().
[[nodiscard]] const LayoutStrategy* findStrategy(std::string_view name);

/// findStrategy or a SimError naming the valid strategies.
[[nodiscard]] const LayoutStrategy& parseStrategy(std::string_view name);

/// Parses a strategy spec string — `name` or `name{key=value,...}`
/// (names and aliases as in findStrategy; keys are the PassParams
/// fields; pass lists join with '+') — into a resolved StrategySpec.
/// Unknown names, unknown keys and malformed values throw SimError
/// listing the valid alternatives.
[[nodiscard]] StrategySpec resolveStrategy(std::string_view spec);

/// Applies a `key=value,...` override list (the WP_LAYOUT_PARAMS and
/// `{...}` syntax) on top of @p spec, recomputing needs_profile.
/// Throws SimError on unknown keys or malformed values.
void applyParamOverrides(StrategySpec& spec, std::string_view overrides);

/// The spec of a registered strategy at its default params.
[[nodiscard]] StrategySpec specOf(const LayoutStrategy& strategy);

/// The strategy way-placement runs use when WP_LAYOUT is unset.
[[nodiscard]] const std::string& defaultStrategyName();

/// Layout spec from WP_LAYOUT + WP_LAYOUT_PARAMS, strictly parsed in
/// the WP_SEED/WP_JOBS style: unset or empty WP_LAYOUT means
/// defaultStrategyName(); WP_LAYOUT_PARAMS, when set, is a
/// `key=value,...` override list applied on top. Garbage in either
/// prints the valid alternatives and exits with status 1 instead of
/// silently running the wrong experiment. Returns the canonical spec
/// string.
[[nodiscard]] std::string strategyFromEnv();

/// The ChainOrdering stage alone: the block placement order the
/// pipeline would emit for @p spec (exposed for tests and tools; the
/// returned order is a permutation of every block id).
[[nodiscard]] std::vector<u32> orderBlocks(const ir::Module& module,
                                           const StrategySpec& spec,
                                           u64 seed = 0);

/// Runs the full pass pipeline: ChainFormation over @p module, the
/// spec's hot/cold split and ordering-pass sequence, then Emission
/// (fall-through repair + relocation + image encode). @p seed only
/// affects seeded orderings.
[[nodiscard]] LayoutResult runPipeline(const ir::Module& module,
                                       const StrategySpec& spec,
                                       u64 seed = 0);

/// runPipeline after resolveStrategy(@p spec).
[[nodiscard]] LayoutResult runPipeline(const ir::Module& module,
                                       std::string_view spec, u64 seed = 0);

/// runPipeline at a registered strategy's default params.
[[nodiscard]] LayoutResult runPipeline(const ir::Module& module,
                                       const LayoutStrategy& strategy,
                                       u64 seed = 0);

/// Convenience for callers that only need the linked image.
[[nodiscard]] inline mem::Image layoutImage(const ir::Module& module,
                                            std::string_view spec,
                                            u64 seed = 0) {
  return runPipeline(module, spec, seed).image;
}

}  // namespace wp::layout
