// Layout strategies: the pluggable ChainOrdering stage of the layout
// pass pipeline (ChainFormation → ChainOrdering → Emission).
//
// The paper's compiler contribution (§3) is one ordering — concatenate
// the must-respect chains heaviest-first — but the interesting
// scientific question for this reproduction is how much of the energy
// saving depends on the *quality* of the hot-code ordering feeding the
// way-placement area. So orderings are first-class, registered by name
// and selectable per run (`SchemeSpec::layout`, `WP_LAYOUT=<name>`):
//
//   original       authored block order (the baseline binary),
//   way_placement  the paper's heaviest-first chain concatenation,
//   random         seeded shuffle of all blocks (layout ablation floor),
//   call_distance  Codestitcher-style distance-bounded collocation:
//                  merges a callee's hot chain behind its heaviest call
//                  site whenever the merged cluster stays within a
//                  configurable reach (Lavaee et al.),
//   exttsp         greedy chain concatenation maximizing the ExtTSP
//                  score, which values short forward jumps above raw
//                  fall-through count (Newell & Pupyrev).
//
// Every pipeline run emits a LayoutReport — chains formed, fall-through
// repairs the linker had to insert, and the placed dynamic-instruction
// profile — so sweeps can explain *why* a layout wins, not just that it
// does. Reports flow through RunResult into WP_JSON / WP_TRACE.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "layout/layout.hpp"

namespace wp::layout {

/// What one pass-pipeline run did to a module. Host-side observability:
/// nothing here feeds back into the simulated machine.
struct LayoutReport {
  std::string strategy;  ///< canonical name of the ordering that ran
  u64 chains = 0;        ///< must-respect chains formed (stage 1)
  u64 repairs = 0;       ///< fall-through branches link() materialized

  /// Placement of every block: where it landed and how hot it is.
  struct Span {
    u32 addr = 0;   ///< placed address of the block's first instruction
    u32 insts = 0;  ///< authored instructions (repairs excluded)
    u64 exec = 0;   ///< profiled entry count of the block
  };
  std::vector<Span> spans;  ///< indexed by block id

  /// Profiled dynamic instructions over all spans (exec × insts).
  [[nodiscard]] u64 dynamicInstructions() const;

  /// Fraction of profiled dynamic instructions whose placed address
  /// falls within the first @p area_bytes of the code segment — i.e.
  /// inside a way-placement area of that size. Blocks straddling the
  /// boundary count instruction-by-instruction. 0 when the module
  /// carries no profile.
  [[nodiscard]] double coverage(u32 area_bytes) const;
};

/// A linked image plus the report of the pipeline run that produced it.
struct LayoutResult {
  mem::Image image;
  LayoutReport report;
};

/// One registered ChainOrdering. `order` consumes the must-respect
/// chains of stage 1 and returns a permutation of all block ids; the
/// Emission stage repairs whatever fall-throughs the order breaks, so
/// any permutation is architecturally sound (property-tested).
struct LayoutStrategy {
  std::string name;     ///< canonical registry name (the WP_LAYOUT value)
  std::string alias;    ///< accepted legacy spelling ("" = none)
  std::string summary;  ///< one-line description for --help style output
  std::string source;   ///< the paper the ordering comes from
  /// True for orderings that are meaningless without block exec counts;
  /// on an unusable training profile these fall back to the original
  /// layout (a bad profile costs energy, never correctness).
  bool needs_profile = false;
  std::vector<u32> (*order)(const ir::Module&, std::vector<Chain>&&,
                            u64 seed) = nullptr;
};

/// All registered strategies, in registration order (stable across runs;
/// `original` is always first).
[[nodiscard]] const std::vector<const LayoutStrategy*>& strategies();

/// Canonical names, in registration order.
[[nodiscard]] std::vector<std::string> strategyNames();

/// Looks @p name up by canonical name or alias; nullptr when unknown.
[[nodiscard]] const LayoutStrategy* findStrategy(std::string_view name);

/// findStrategy or a SimError naming the valid strategies.
[[nodiscard]] const LayoutStrategy& parseStrategy(std::string_view name);

/// The strategy way-placement runs use when WP_LAYOUT is unset.
[[nodiscard]] const std::string& defaultStrategyName();

/// Strategy name from WP_LAYOUT, strictly parsed in the WP_SEED/WP_JOBS
/// style: unset or empty means defaultStrategyName(); an unknown name
/// prints the valid list and exits with status 1 instead of silently
/// running the wrong experiment.
[[nodiscard]] std::string strategyFromEnv();

/// Runs the full pass pipeline: ChainFormation over @p module, the
/// strategy's ChainOrdering, then Emission (fall-through repair +
/// relocation + image encode). @p seed only affects seeded orderings.
[[nodiscard]] LayoutResult runPipeline(const ir::Module& module,
                                       const LayoutStrategy& strategy,
                                       u64 seed = 0);

/// runPipeline after parseStrategy(@p name).
[[nodiscard]] LayoutResult runPipeline(const ir::Module& module,
                                       std::string_view name, u64 seed = 0);

/// The call_distance collocation bound: a callee chain is merged behind
/// its call site only while the merged cluster stays within this many
/// bytes, keeping every collocated call short-reach (Codestitcher's
/// distance budget). The registered strategy uses the default; the
/// parameterized ordering is exposed for reach sweeps.
inline constexpr u32 kCallDistanceReachBytes = 4096;

[[nodiscard]] std::vector<u32> orderCallDistanceWithReach(
    const ir::Module& module, std::vector<Chain>&& chains, u32 reach_bytes);

}  // namespace wp::layout
