// The LayoutStrategy registry and the pass-pipeline driver.
//
// Registration is static and ordered: `original` first (the baseline
// every experiment compares against), then the paper's ordering, then
// the ablation floor, then the two literature orderings. Everything
// that consumes strategies — SchemeSpec, WP_LAYOUT, the ablation bench,
// the tests — goes through this table, so adding an ordering is one
// pass file plus one entry here.
#include "layout/strategy.hpp"

#include <cstdio>
#include <cstdlib>

#include "layout/passes/passes.hpp"
#include "support/ensure.hpp"

namespace wp::layout {

u64 LayoutReport::dynamicInstructions() const {
  u64 total = 0;
  for (const Span& s : spans) total += s.exec * s.insts;
  return total;
}

double LayoutReport::coverage(u32 area_bytes) const {
  const u64 total = dynamicInstructions();
  if (total == 0) return 0.0;
  const u64 limit = static_cast<u64>(mem::kCodeBase) + area_bytes;
  u64 covered = 0;
  for (const Span& s : spans) {
    if (s.exec == 0 || s.insts == 0) continue;
    u64 inside = 0;
    if (s.addr + static_cast<u64>(s.insts) * 4 <= limit) {
      inside = s.insts;
    } else if (s.addr < limit) {
      inside = (limit - s.addr) / 4;  // straddlers count per instruction
    }
    covered += s.exec * inside;
  }
  return static_cast<double>(covered) / static_cast<double>(total);
}

const std::vector<const LayoutStrategy*>& strategies() {
  static const LayoutStrategy kOriginalStrategy{
      "original",
      "",
      "authored block order; the baseline binary",
      "baseline",
      /*needs_profile=*/false,
      &passes::orderOriginal,
  };
  static const LayoutStrategy kWayPlacementStrategy{
      "way_placement",
      "way-placement",  // the spelling policyName() has always printed
      "heaviest-first chain concatenation (the paper's ordering)",
      "Jones et al., DATE 2008",
      /*needs_profile=*/true,
      &passes::orderWayPlacement,
  };
  static const LayoutStrategy kRandomStrategy{
      "random",
      "",
      "seeded shuffle of all blocks; the ablation floor",
      "ablation control",
      /*needs_profile=*/false,
      &passes::orderRandom,
  };
  static const LayoutStrategy kCallDistanceStrategy{
      "call_distance",
      "",
      "distance-bounded collocation of callees behind hot call sites",
      "Lavaee et al., Codestitcher",
      /*needs_profile=*/true,
      &passes::orderCallDistance,
  };
  static const LayoutStrategy kExtTspStrategy{
      "exttsp",
      "",
      "greedy chain concatenation maximizing the ExtTSP score",
      "Newell & Pupyrev, ExtTSP",
      /*needs_profile=*/true,
      &passes::orderExtTsp,
  };
  static const std::vector<const LayoutStrategy*> kRegistry{
      &kOriginalStrategy, &kWayPlacementStrategy, &kRandomStrategy,
      &kCallDistanceStrategy, &kExtTspStrategy,
  };
  return kRegistry;
}

std::vector<std::string> strategyNames() {
  std::vector<std::string> names;
  names.reserve(strategies().size());
  for (const LayoutStrategy* s : strategies()) names.push_back(s->name);
  return names;
}

const LayoutStrategy* findStrategy(std::string_view name) {
  for (const LayoutStrategy* s : strategies()) {
    if (name == s->name) return s;
    if (!s->alias.empty() && name == s->alias) return s;
  }
  return nullptr;
}

namespace {

std::string joinedStrategyNames() {
  std::string joined;
  for (const LayoutStrategy* s : strategies()) {
    if (!joined.empty()) joined += ", ";
    joined += s->name;
  }
  return joined;
}

}  // namespace

const LayoutStrategy& parseStrategy(std::string_view name) {
  const LayoutStrategy* s = findStrategy(name);
  if (s == nullptr) {
    throw SimError("unknown layout strategy '" + std::string(name) +
                   "' (valid: " + joinedStrategyNames() + ")");
  }
  return *s;
}

const std::string& defaultStrategyName() {
  static const std::string kDefault = "way_placement";
  return kDefault;
}

std::string strategyFromEnv() {
  const char* raw = std::getenv("WP_LAYOUT");
  if (raw == nullptr || raw[0] == '\0') return defaultStrategyName();
  const LayoutStrategy* s = findStrategy(raw);
  if (s == nullptr) {
    std::fprintf(stderr, "WP_LAYOUT: unknown layout strategy '%s' (valid: %s)\n",
                 raw, joinedStrategyNames().c_str());
    std::exit(1);
  }
  return s->name;
}

LayoutResult runPipeline(const ir::Module& module,
                         const LayoutStrategy& strategy, u64 seed) {
  std::vector<Chain> chains = formChains(module);
  const u64 chain_count = chains.size();

  const std::vector<u32> order =
      strategy.order(module, std::move(chains), seed);

  LayoutResult result;
  result.report.strategy = strategy.name;
  result.report.chains = chain_count;
  result.image = passes::emit(module, order, &result.report.repairs);

  result.report.spans.resize(module.blocks.size());
  for (const ir::BasicBlock& b : module.blocks) {
    LayoutReport::Span& s = result.report.spans[b.id];
    s.addr = result.image.block_addr.at(b.id);
    s.insts = static_cast<u32>(b.insts.size());
    s.exec = b.exec_count;
  }
  return result;
}

LayoutResult runPipeline(const ir::Module& module, std::string_view name,
                         u64 seed) {
  return runPipeline(module, parseStrategy(name), seed);
}

}  // namespace wp::layout
