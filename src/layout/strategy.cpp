// The LayoutStrategy registry, strategy-spec parsing and the
// pass-pipeline driver.
//
// Registration is static and ordered: `original` first (the baseline
// every experiment compares against), then the paper's ordering, then
// the ablation floor, then the two literature orderings, then the
// autotuned pipeline. Everything that consumes strategies — SchemeSpec,
// WP_LAYOUT/WP_LAYOUT_PARAMS, the ablation bench, the autotuner, the
// tests — goes through this table, so adding an ordering is one pass
// file plus one entry here.
//
// Spec strings (`name` or `name{key=value,...}`) resolve to a
// StrategySpec and canonicalize back to a unique string; that string is
// cell-key, checkpoint and result-store material, which is why
// canonical() elides defaulted keys (keeping every pre-parameterization
// key valid) and prints doubles shortest-round-trip (so equal specs
// canonicalize equal and the string re-parses to the same spec).
#include "layout/strategy.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "layout/passes/passes.hpp"
#include "support/ensure.hpp"

namespace wp::layout {

u64 LayoutReport::dynamicInstructions() const {
  u64 total = 0;
  for (const Span& s : spans) total += s.exec * s.insts;
  return total;
}

double LayoutReport::coverage(u32 area_bytes) const {
  const u64 total = dynamicInstructions();
  if (total == 0) return 0.0;
  const u64 limit = static_cast<u64>(mem::kCodeBase) + area_bytes;
  u64 covered = 0;
  for (const Span& s : spans) {
    if (s.exec == 0 || s.insts == 0) continue;
    u64 inside = 0;
    if (s.addr + static_cast<u64>(s.insts) * 4 <= limit) {
      inside = s.insts;
    } else if (s.addr < limit) {
      inside = (limit - s.addr) / 4;  // straddlers count per instruction
    }
    covered += s.exec * inside;
  }
  return static_cast<double>(covered) / static_cast<double>(total);
}

namespace passes {

const std::vector<const OrderingPass*>& orderingPasses() {
  static const OrderingPass kOriginalPass{"original", false, &passOriginal};
  static const OrderingPass kWayPlacementPass{"way_placement", true,
                                              &passWayPlacement};
  static const OrderingPass kRandomPass{"random", false, &passRandom};
  static const OrderingPass kCallDistancePass{"call_distance", true,
                                              &passCallDistance};
  static const OrderingPass kExtTspPass{"exttsp", true, &passExtTsp};
  static const std::vector<const OrderingPass*> kPasses{
      &kOriginalPass, &kWayPlacementPass, &kRandomPass, &kCallDistancePass,
      &kExtTspPass,
  };
  return kPasses;
}

const OrderingPass* findOrderingPass(std::string_view name) {
  for (const OrderingPass* p : orderingPasses()) {
    if (name == p->name) return p;
  }
  return nullptr;
}

std::string joinedOrderingPassNames() {
  std::string joined;
  for (const OrderingPass* p : orderingPasses()) {
    if (!joined.empty()) joined += ", ";
    joined += p->name;
  }
  return joined;
}

}  // namespace passes

namespace {

PassParams paramsWith(std::vector<std::string> pass_names) {
  PassParams p;
  p.passes = std::move(pass_names);
  return p;
}

/// The autotuner's best-found configuration over the full 23-workload
/// suite (seed 0, 32 KB/32-way, 1 KB WP area, I-cache energy
/// objective, 24-eval budget; bench/autotune_layout reproduces the
/// search). Distance-bounded call collocation at its default 4 KB
/// reach beat the paper's plain heaviest-first ordering by 0.10 pp of
/// baseline I-cache energy (0.4859 vs 0.4869); appending a
/// heaviest-first cluster sort matched but never strictly improved it,
/// so strict-improvement descent kept the single pass.
PassParams autotunedParams() {
  PassParams p;
  p.passes = {"call_distance"};
  return p;
}

}  // namespace

const std::vector<const LayoutStrategy*>& strategies() {
  static const LayoutStrategy kOriginalStrategy{
      "original",
      "",
      "authored block order; the baseline binary",
      "baseline",
      /*needs_profile=*/false,
      paramsWith({"original"}),
  };
  static const LayoutStrategy kWayPlacementStrategy{
      "way_placement",
      "way-placement",  // the spelling the legacy Policy API printed
      "heaviest-first chain concatenation (the paper's ordering)",
      "Jones et al., DATE 2008",
      /*needs_profile=*/true,
      paramsWith({"way_placement"}),
  };
  static const LayoutStrategy kRandomStrategy{
      "random",
      "",
      "seeded shuffle of all blocks; the ablation floor",
      "ablation control",
      /*needs_profile=*/false,
      paramsWith({"random"}),
  };
  static const LayoutStrategy kCallDistanceStrategy{
      "call_distance",
      "",
      "distance-bounded collocation of callees behind hot call sites",
      "Lavaee et al., Codestitcher",
      /*needs_profile=*/true,
      paramsWith({"call_distance"}),
  };
  static const LayoutStrategy kExtTspStrategy{
      "exttsp",
      "",
      "greedy chain concatenation maximizing the ExtTSP score",
      "Newell & Pupyrev, ExtTSP",
      /*needs_profile=*/true,
      paramsWith({"exttsp"}),
  };
  static const LayoutStrategy kAutotunedStrategy{
      "autotuned",
      "",
      "the layout autotuner's best-found pass pipeline",
      "Nobre et al., phase-ordering search",
      /*needs_profile=*/true,
      autotunedParams(),
  };
  static const std::vector<const LayoutStrategy*> kRegistry{
      &kOriginalStrategy,     &kWayPlacementStrategy, &kRandomStrategy,
      &kCallDistanceStrategy, &kExtTspStrategy,       &kAutotunedStrategy,
  };
  return kRegistry;
}

std::vector<std::string> strategyNames() {
  std::vector<std::string> names;
  names.reserve(strategies().size());
  for (const LayoutStrategy* s : strategies()) names.push_back(s->name);
  return names;
}

const LayoutStrategy* findStrategy(std::string_view name) {
  for (const LayoutStrategy* s : strategies()) {
    if (name == s->name) return s;
    if (!s->alias.empty() && name == s->alias) return s;
  }
  return nullptr;
}

namespace {

std::string joinedStrategyNames() {
  std::string joined;
  for (const LayoutStrategy* s : strategies()) {
    if (!joined.empty()) joined += ", ";
    joined += s->name;
  }
  return joined;
}

constexpr std::string_view kParamKeys[] = {
    "passes",          "chain_hot_threshold", "call_reach_bytes",
    "tsp_forward_bytes", "tsp_backward_bytes", "tsp_forward_weight",
    "tsp_backward_weight",
};

std::string joinedParamKeys() {
  std::string joined;
  for (const std::string_view k : kParamKeys) {
    if (!joined.empty()) joined += ", ";
    joined += k;
  }
  return joined;
}

/// Shortest decimal form that round-trips through from_chars — keeps
/// canonical specs short ("0.1", not "0.10000000000000001") yet exact.
std::string fmtDouble(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  WP_ENSURE(ec == std::errc{}, "double format failed");
  return std::string(buf, end);
}

u64 parseUnsigned(std::string_view key, std::string_view value, u64 max) {
  u64 v = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size() || v > max) {
    throw SimError("layout param '" + std::string(key) + "=" +
                   std::string(value) + "' is not a valid unsigned integer" +
                   " (expected an integer in [0, " + std::to_string(max) +
                   "])");
  }
  return v;
}

double parseWeight(std::string_view key, std::string_view value) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size() || !(v >= 0.0) ||
      !(v <= 1e6)) {
    throw SimError("layout param '" + std::string(key) + "=" +
                   std::string(value) +
                   "' is not a valid weight (expected a number in [0, 1e6])");
  }
  return v;
}

std::vector<std::string> parsePassList(std::string_view value) {
  std::vector<std::string> names;
  std::string_view rest = value;
  while (true) {
    const auto plus = rest.find('+');
    const std::string_view item = rest.substr(0, plus);
    if (item.empty() || passes::findOrderingPass(item) == nullptr) {
      throw SimError("layout param 'passes=" + std::string(value) +
                     "' names an unknown ordering pass '" +
                     std::string(item) + "' (valid: " +
                     passes::joinedOrderingPassNames() +
                     ", joined with '+')");
    }
    names.emplace_back(item);
    if (plus == std::string_view::npos) break;
    rest.remove_prefix(plus + 1);
  }
  return names;
}

void applyOneOverride(PassParams& params, std::string_view key,
                      std::string_view value) {
  constexpr u64 kMaxU32 = ~u32{0};
  if (key == "passes") {
    params.passes = parsePassList(value);
  } else if (key == "chain_hot_threshold") {
    params.chain_hot_threshold = parseUnsigned(key, value, ~u64{0});
  } else if (key == "call_reach_bytes") {
    params.call_reach_bytes = static_cast<u32>(parseUnsigned(key, value,
                                                             kMaxU32));
  } else if (key == "tsp_forward_bytes") {
    params.tsp_forward_bytes = static_cast<u32>(parseUnsigned(key, value,
                                                              kMaxU32));
  } else if (key == "tsp_backward_bytes") {
    params.tsp_backward_bytes = static_cast<u32>(parseUnsigned(key, value,
                                                               kMaxU32));
  } else if (key == "tsp_forward_weight") {
    params.tsp_forward_weight = parseWeight(key, value);
  } else if (key == "tsp_backward_weight") {
    params.tsp_backward_weight = parseWeight(key, value);
  } else {
    throw SimError("unknown layout param '" + std::string(key) +
                   "' (valid: " + joinedParamKeys() + ")");
  }
}

void applyOverrideList(PassParams& params, std::string_view overrides) {
  std::string_view rest = overrides;
  if (rest.empty()) {
    throw SimError("empty layout param list (expected key=value,... with "
                   "keys: " + joinedParamKeys() + ")");
  }
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw SimError("malformed layout param '" + std::string(pair) +
                     "' (expected key=value with keys: " + joinedParamKeys() +
                     ")");
    }
    applyOneOverride(params, pair.substr(0, eq), pair.substr(eq + 1));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
}

bool passListNeedsProfile(const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    const passes::OrderingPass* p = passes::findOrderingPass(name);
    if (p != nullptr && p->needs_profile) return true;
  }
  return false;
}

std::string joinPassList(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& n : names) {
    if (!joined.empty()) joined += '+';
    joined += n;
  }
  return joined;
}

}  // namespace

const LayoutStrategy& parseStrategy(std::string_view name) {
  const LayoutStrategy* s = findStrategy(name);
  if (s == nullptr) {
    throw SimError("unknown layout strategy '" + std::string(name) +
                   "' (valid: " + joinedStrategyNames() + ")");
  }
  return *s;
}

StrategySpec specOf(const LayoutStrategy& strategy) {
  StrategySpec spec;
  spec.name = strategy.name;
  spec.needs_profile = strategy.needs_profile;
  spec.params = strategy.params;
  return spec;
}

void applyParamOverrides(StrategySpec& spec, std::string_view overrides) {
  applyOverrideList(spec.params, overrides);
  spec.needs_profile = passListNeedsProfile(spec.params.passes);
}

StrategySpec resolveStrategy(std::string_view spec_str) {
  const auto brace = spec_str.find('{');
  const std::string_view name = spec_str.substr(0, brace);
  StrategySpec spec = specOf(parseStrategy(name));
  if (brace != std::string_view::npos) {
    if (spec_str.back() != '}') {
      throw SimError("malformed layout spec '" + std::string(spec_str) +
                     "' (expected name{key=value,...})");
    }
    applyParamOverrides(
        spec, spec_str.substr(brace + 1, spec_str.size() - brace - 2));
  }
  return spec;
}

std::string StrategySpec::canonical() const {
  const LayoutStrategy* base = findStrategy(name);
  WP_ENSURE(base != nullptr,
            "StrategySpec names unregistered strategy '" + name + "'");
  const PassParams& d = base->params;
  std::string kv;
  const auto add = [&](std::string_view key, std::string value) {
    if (!kv.empty()) kv += ',';
    kv += key;
    kv += '=';
    kv += value;
  };
  if (params.passes != d.passes) add("passes", joinPassList(params.passes));
  if (params.chain_hot_threshold != d.chain_hot_threshold) {
    add("chain_hot_threshold", std::to_string(params.chain_hot_threshold));
  }
  if (params.call_reach_bytes != d.call_reach_bytes) {
    add("call_reach_bytes", std::to_string(params.call_reach_bytes));
  }
  if (params.tsp_forward_bytes != d.tsp_forward_bytes) {
    add("tsp_forward_bytes", std::to_string(params.tsp_forward_bytes));
  }
  if (params.tsp_backward_bytes != d.tsp_backward_bytes) {
    add("tsp_backward_bytes", std::to_string(params.tsp_backward_bytes));
  }
  if (params.tsp_forward_weight != d.tsp_forward_weight) {
    add("tsp_forward_weight", fmtDouble(params.tsp_forward_weight));
  }
  if (params.tsp_backward_weight != d.tsp_backward_weight) {
    add("tsp_backward_weight", fmtDouble(params.tsp_backward_weight));
  }
  if (kv.empty()) return name;
  return name + "{" + kv + "}";
}

const std::string& defaultStrategyName() {
  static const std::string kDefault = "way_placement";
  return kDefault;
}

std::string strategyFromEnv() {
  const char* raw = std::getenv("WP_LAYOUT");
  StrategySpec spec;
  try {
    spec = resolveStrategy((raw == nullptr || raw[0] == '\0')
                               ? std::string_view(defaultStrategyName())
                               : std::string_view(raw));
  } catch (const SimError& e) {
    std::fprintf(stderr, "WP_LAYOUT: %s\n", e.what());
    std::exit(1);
  }
  const char* overrides = std::getenv("WP_LAYOUT_PARAMS");
  if (overrides != nullptr && overrides[0] != '\0') {
    try {
      applyParamOverrides(spec, overrides);
    } catch (const SimError& e) {
      std::fprintf(stderr, "WP_LAYOUT_PARAMS: %s\n", e.what());
      std::exit(1);
    }
  }
  return spec.canonical();
}

namespace {

/// ChainFormation + hot/cold split + the ordering-pass sequence.
/// @p chain_count receives the formed-chain count for the report.
std::vector<u32> orderedBlocks(const ir::Module& module,
                               const StrategySpec& spec, u64 seed,
                               u64* chain_count) {
  std::vector<Chain> chains = formChains(module);
  if (chain_count != nullptr) *chain_count = chains.size();

  // Hot/cold split: cold chains skip the passes and keep formation
  // order behind everything the passes placed.
  std::vector<Chain> cold;
  if (spec.params.chain_hot_threshold > 0) {
    std::vector<Chain> hot;
    for (Chain& c : chains) {
      (c.weight >= spec.params.chain_hot_threshold ? hot : cold)
          .push_back(std::move(c));
    }
    chains = std::move(hot);
  }

  for (const std::string& pass_name : spec.params.passes) {
    const passes::OrderingPass* pass = passes::findOrderingPass(pass_name);
    WP_ENSURE(pass != nullptr, "StrategySpec carries unknown ordering pass '" +
                                   pass_name + "'");
    chains = pass->run(module, std::move(chains), spec.params, seed);
  }

  std::vector<u32> order;
  order.reserve(module.blocks.size());
  for (const Chain& c : chains) {
    order.insert(order.end(), c.blocks.begin(), c.blocks.end());
  }
  for (const Chain& c : cold) {
    order.insert(order.end(), c.blocks.begin(), c.blocks.end());
  }
  WP_ENSURE(order.size() == module.blocks.size(),
            "placement order must cover every block");
  return order;
}

}  // namespace

std::vector<u32> orderBlocks(const ir::Module& module,
                             const StrategySpec& spec, u64 seed) {
  return orderedBlocks(module, spec, seed, nullptr);
}

LayoutResult runPipeline(const ir::Module& module, const StrategySpec& spec,
                         u64 seed) {
  u64 chain_count = 0;
  const std::vector<u32> order =
      orderedBlocks(module, spec, seed, &chain_count);

  LayoutResult result;
  result.report.strategy = spec.canonical();
  result.report.chains = chain_count;
  result.image = passes::emit(module, order, &result.report.repairs);

  result.report.spans.resize(module.blocks.size());
  for (const ir::BasicBlock& b : module.blocks) {
    LayoutReport::Span& s = result.report.spans[b.id];
    s.addr = result.image.block_addr.at(b.id);
    s.insts = static_cast<u32>(b.insts.size());
    s.exec = b.exec_count;
  }
  return result;
}

LayoutResult runPipeline(const ir::Module& module, std::string_view spec,
                         u64 seed) {
  return runPipeline(module, resolveStrategy(spec), seed);
}

LayoutResult runPipeline(const ir::Module& module,
                         const LayoutStrategy& strategy, u64 seed) {
  return runPipeline(module, specOf(strategy), seed);
}

}  // namespace wp::layout
