#include "energy/energy_model.hpp"

namespace wp::energy {

CacheEnergy EnergyModel::cacheEnergy(const CacheGeometry& geom,
                                     const CacheStats& stats,
                                     double data_area_factor,
                                     u64 flash_clears) const {
  CacheEnergy e;
  const double tag_bits = geom.tagBits();
  const double row_bits = geom.line_bytes * 8.0 * data_area_factor;

  e.tag = static_cast<double>(stats.matchline_precharges) * tag_bits *
              p_.cam_matchline_per_bit +
          static_cast<double>(stats.tag_compares) * tag_bits *
              p_.cam_compare_per_bit;

  // Every delivered word senses its (possibly link-widened) row; store
  // hits write one word.
  e.data = static_cast<double>(stats.data_word_reads) * row_bits *
               p_.data_read_per_bit +
           static_cast<double>(stats.data_word_writes) * 32.0 *
               p_.data_write_per_bit +
           static_cast<double>(stats.accesses) * p_.access_overhead;

  e.fills = static_cast<double>(stats.line_fills + stats.writebacks) *
                row_bits * p_.data_write_per_bit +
            static_cast<double>(stats.line_fills) * p_.tag_write;

  // Link maintenance: each link write updates (way bits + valid) cells.
  const double link_bits = geom.wayBits() + 1.0;
  e.links = static_cast<double>(stats.link_writes) * link_bits *
                p_.data_write_per_bit +
            static_cast<double>(flash_clears) * p_.link_flash_clear;
  return e;
}

CacheEnergy EnergyModel::cacheEnergyRam(const CacheGeometry& geom,
                                        const CacheStats& stats,
                                        double data_area_factor,
                                        u64 flash_clears) const {
  CacheEnergy e;
  const double tag_bits = geom.tagBits();
  const double row_bits = geom.line_bytes * 8.0 * data_area_factor;
  const double ways = geom.ways;

  // Tag SRAM reads: the lookup-kind counters say how many tag entries
  // each access touched (the CAM counters carry the same information).
  e.tag = static_cast<double>(stats.tag_compares) * tag_bits *
          p_.ram_tag_read_per_bit;

  // Data rows read in parallel with the tags, per lookup kind.
  const double rows_read =
      static_cast<double>(stats.full_lookups) * ways +
      static_cast<double>(stats.partial_lookups) * (ways - 1.0) +
      static_cast<double>(stats.single_way_lookups) +
      static_cast<double>(stats.no_tag_lookups);
  e.data = rows_read * row_bits * p_.data_read_per_bit +
           static_cast<double>(stats.data_word_writes) * 32.0 *
               p_.data_write_per_bit +
           static_cast<double>(stats.accesses) * p_.access_overhead;

  e.fills = static_cast<double>(stats.line_fills + stats.writebacks) *
                row_bits * p_.data_write_per_bit +
            static_cast<double>(stats.line_fills) * p_.tag_write;

  const double link_bits = geom.wayBits() + 1.0;
  e.links = static_cast<double>(stats.link_writes) * link_bits *
                p_.data_write_per_bit +
            static_cast<double>(flash_clears) * p_.link_flash_clear;
  return e;
}

double EnergyModel::lookupEnergy(const CacheGeometry& geom,
                                 u32 ways_searched) const {
  const double tag_bits = geom.tagBits();
  const double row_bits = geom.line_bytes * 8.0;
  return ways_searched * tag_bits *
             (p_.cam_matchline_per_bit + p_.cam_compare_per_bit) +
         row_bits * p_.data_read_per_bit + p_.access_overhead;
}

double EnergyModel::leakageEnergy(const cache::DrowsyStats& stats) const {
  return static_cast<double>(stats.awake_line_ticks) *
             p_.leak_awake_per_line_tick +
         static_cast<double>(stats.drowsy_line_ticks) *
             p_.leak_awake_per_line_tick * p_.leak_drowsy_factor +
         static_cast<double>(stats.wakeups) * p_.drowsy_wake;
}

double EnergyModel::leakageAllAwake(u32 lines, u64 accesses) const {
  return static_cast<double>(lines) * static_cast<double>(accesses) *
         p_.leak_awake_per_line_tick;
}

double EnergyModel::tlbEnergy(const TlbStats& stats, bool wp_bit_active) const {
  double per_access = p_.tlb_access;
  if (wp_bit_active) per_access += p_.tlb_wp_bit;
  return static_cast<double>(stats.accesses) * per_access;
}

double EnergyModel::hintEnergy(const FetchStats& stats) const {
  return static_cast<double>(stats.fetches) * p_.way_hint_bit;
}

double EnergyModel::coreEnergy(u64 instructions, u64 cycles) const {
  return static_cast<double>(instructions) * p_.core_per_instruction +
         static_cast<double>(cycles) * p_.core_per_cycle;
}

double EnergyModel::memoryEnergy(u64 line_transfers) const {
  return static_cast<double>(line_transfers) * p_.mem_access_per_line;
}

}  // namespace wp::energy
