// Analytic energy model for the CAM-tag caches and the surrounding core.
//
// The paper evaluates with XTREM's XScale power model; we substitute a
// CACTI-flavoured per-component model. Only *relative* energy matters for
// every reported number (all figures are normalized to the unmodified
// baseline), so the constants below fix component *ratios*, calibrated so
// that for the initial 32 KB 32-way configuration:
//
//   - a full CAM search (32 ways x 22-bit tags: match-line precharge +
//     comparison) is ~53 % of a read access,
//   - the data-array row read is ~42 %,
//   - decode/output drive make up the rest,
//   - the I-cache is ~25 % of total processor energy (StrongARM burns
//     27 % in its I-cache [Montanaro et al.]).
//
// CAM sub-bank read model: the matching way's match line drives the word
// line of its data row, so a read senses the whole row (line_bits x
// read_per_bit). Way-memoization widens every row by its link bits, which
// is how the paper's 21 % data-side overhead enters all data reads,
// fills, and the fill writes.
#pragma once

#include "cache/drowsy.hpp"
#include "cache/geometry.hpp"
#include "cache/stats.hpp"

namespace wp::energy {

using cache::CacheGeometry;
using cache::CacheStats;
using cache::FetchStats;
using cache::TlbStats;

/// Model constants, in picojoules (pJ) per event or per bit.
struct EnergyParams {
  // CAM tag side.
  double cam_matchline_per_bit = 0.025;  ///< precharge, per tag bit per way
  double cam_compare_per_bit = 0.020;    ///< comparator, per tag bit per way
  double tag_write = 2.0;                ///< tag store on fill

  // RAM-tag alternative (paper §4.2: the scheme "could also easily be
  // applied to a standard RAM cache"): tags live in SRAM and a
  // conventional access reads every way's tag AND data in parallel.
  double ram_tag_read_per_bit = 0.030;

  // Data side.
  double data_read_per_bit = 0.10;   ///< row sense per bit
  double data_write_per_bit = 0.12;  ///< row/word write per bit
  double access_overhead = 2.9;      ///< decode + output drive, per access

  // TLB and the scheme's extra state.
  double tlb_access = 6.0;    ///< 32-entry CAM search
  double tlb_wp_bit = 0.05;   ///< reading the way-placement bit
  double way_hint_bit = 0.02; ///< way-hint read+update, per fetch

  // Way-memoization link maintenance.
  double link_flash_clear = 5.0;  ///< wired flash-clear of all valid bits

  // Leakage (only reported by the drowsy-cache extension bench; the
  // paper's figures are dynamic-energy-only and stay that way).
  double leak_awake_per_line_tick = 0.020;  ///< pJ per awake line per access
  double leak_drowsy_factor = 0.10;         ///< drowsy lines leak 10 %
  double drowsy_wake = 0.4;                 ///< pJ per wakeup

  // Non-cache core energy (for the ED product denominator). Calibrated
  // so the I-cache is ~14-15 % of total processor energy on the initial
  // configuration, which reproduces the paper's average ED of 0.93 given
  // ~50 % I-cache savings (the paper's own ED numbers imply a share well
  // below the StrongARM's 27 % headline figure).
  double core_per_instruction = 260.0;  ///< datapath, regfile, clock
  double core_per_cycle = 30.0;         ///< global clock + leakage
  double mem_access_per_line = 800.0;   ///< off-chip line transfer
};

/// Per-component energy of one cache over a run, in pJ.
struct CacheEnergy {
  double tag = 0.0;    ///< match-line precharge + comparisons
  double data = 0.0;   ///< row reads and store writes
  double fills = 0.0;  ///< refill row writes + tag writes
  double links = 0.0;  ///< way-memoization link writes / flash clears
  [[nodiscard]] double total() const { return tag + data + fills + links; }
};

/// Whole-run energy accounting for one simulated program execution.
struct RunEnergy {
  CacheEnergy icache;
  CacheEnergy dcache;
  double itlb = 0.0;
  double hint = 0.0;
  double core = 0.0;
  double memory = 0.0;
  [[nodiscard]] double icacheTotal() const { return icache.total() + hint; }
  [[nodiscard]] double total() const {
    return icache.total() + dcache.total() + itlb + hint + core + memory;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyParams& params = EnergyParams{})
      : p_(params) {}

  [[nodiscard]] const EnergyParams& params() const { return p_; }

  /// Energy of one cache given its event counts. @p data_area_factor
  /// scales all data-side row energies (1.21 for way-memoization's links
  /// at 32 B/32 ways, 1.0 otherwise). @p flash_clears counts
  /// way-memoization global link invalidations.
  [[nodiscard]] CacheEnergy cacheEnergy(const CacheGeometry& geom,
                                        const CacheStats& stats,
                                        double data_area_factor = 1.0,
                                        u64 flash_clears = 0) const;

  /// Same accounting for a RAM-tag set-associative implementation: a
  /// full access reads all W tags and all W data ways in parallel; a
  /// single-way (way-placed or way-predicted) access reads one of each.
  /// Way-placement therefore saves data-array energy too, not just tag
  /// energy — quantifying the paper's §4.2 portability claim.
  [[nodiscard]] CacheEnergy cacheEnergyRam(const CacheGeometry& geom,
                                           const CacheStats& stats,
                                           double data_area_factor = 1.0,
                                           u64 flash_clears = 0) const;

  /// Energy of a single lookup of the given kind (used by unit tests and
  /// the worked example bench).
  [[nodiscard]] double lookupEnergy(const CacheGeometry& geom,
                                    u32 ways_searched) const;

  /// Leakage of a drowsy-controlled cache over a run. For the
  /// always-awake baseline pass `ticks` as awake_line_ticks with zero
  /// drowsy ticks (helper: leakageAllAwake).
  [[nodiscard]] double leakageEnergy(const cache::DrowsyStats& stats) const;

  /// Leakage of an uncontrolled (always awake) cache of @p lines lines
  /// over @p accesses access-ticks.
  [[nodiscard]] double leakageAllAwake(u32 lines, u64 accesses) const;

  [[nodiscard]] double tlbEnergy(const TlbStats& stats,
                                 bool wp_bit_active) const;

  [[nodiscard]] double hintEnergy(const FetchStats& stats) const;

  [[nodiscard]] double coreEnergy(u64 instructions, u64 cycles) const;

  [[nodiscard]] double memoryEnergy(u64 line_transfers) const;

 private:
  EnergyParams p_;
};

}  // namespace wp::energy
