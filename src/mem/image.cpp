#include "mem/image.hpp"

#include "support/ensure.hpp"

namespace wp::mem {

void Image::loadInto(Memory& memory) const {
  WP_ENSURE(kCodeBase + code.size() <= kDataBase,
            "code segment overflows into data segment");
  memory.writeBlock(kCodeBase, code);
  memory.writeBlock(kDataBase, data);
}

}  // namespace wp::mem
