#include "mem/memory.hpp"

#include <algorithm>
#include <cstring>

#include "support/ensure.hpp"

namespace wp::mem {

Memory::Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {
  WP_ENSURE(size_bytes % kPageBytes == 0,
            "memory size must be a whole number of pages");
}

void Memory::checkRange(u32 addr, u32 len) const {
  WP_ENSURE(static_cast<std::size_t>(addr) + len <= bytes_.size(),
            "memory access out of range");
}

u8 Memory::load8(u32 addr) const {
  checkRange(addr, 1);
  return bytes_[addr];
}

u32 Memory::load32(u32 addr) const {
  WP_ENSURE((addr & 3u) == 0, "unaligned 32-bit load");
  checkRange(addr, 4);
  u32 v = 0;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

void Memory::store8(u32 addr, u8 value) {
  checkRange(addr, 1);
  bytes_[addr] = value;
}

void Memory::store32(u32 addr, u32 value) {
  WP_ENSURE((addr & 3u) == 0, "unaligned 32-bit store");
  checkRange(addr, 4);
  std::memcpy(bytes_.data() + addr, &value, 4);
}

void Memory::writeBlock(u32 addr, std::span<const u8> data) {
  checkRange(addr, static_cast<u32>(data.size()));
  std::copy(data.begin(), data.end(), bytes_.begin() + addr);
}

std::vector<u8> Memory::readBlock(u32 addr, std::size_t len) const {
  checkRange(addr, static_cast<u32>(len));
  return {bytes_.begin() + addr, bytes_.begin() + addr + len};
}

void Memory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

}  // namespace wp::mem
