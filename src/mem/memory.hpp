// Flat physical memory and the address-space layout used by every guest
// program.
//
// Layout (matches the paper's assumption that the way-placement area is
// the *start of the binary*, which we load at address 0):
//   [kCodeBase,  kCodeBase + code size)   — text segment, page-aligned
//   [kDataBase,  kDataBase + data size)   — globals and workload buffers
//   [.., kStackTop)                       — downward-growing stack
//
// The page size is 1 KB: the paper requires way-placement areas as small
// as 1 KB and "a multiple of the memory page size", so the page must be
// <= 1 KB (ARM-family MMUs support 1 KB subpages).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/bitops.hpp"

namespace wp::mem {

inline constexpr u32 kPageBytes = 1024;
inline constexpr u32 kCodeBase = 0x0000'0000;
inline constexpr u32 kDataBase = 0x0010'0000;  // 1 MB
inline constexpr u32 kStackTop = 0x0080'0000;  // 8 MB
inline constexpr u32 kDefaultMemoryBytes = 0x0080'0000;

/// Byte-addressed physical memory with checked accessors. Words are
/// little-endian. Unaligned 32-bit accesses are rejected, matching the
/// alignment-checking behaviour of the modelled core.
class Memory {
 public:
  explicit Memory(std::size_t size_bytes = kDefaultMemoryBytes);

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  [[nodiscard]] u8 load8(u32 addr) const;
  [[nodiscard]] u32 load32(u32 addr) const;
  void store8(u32 addr, u8 value);
  void store32(u32 addr, u32 value);

  /// Bulk copy into memory (used by the loader and input generators).
  void writeBlock(u32 addr, std::span<const u8> data);

  /// Bulk copy out of memory (used by output verification).
  [[nodiscard]] std::vector<u8> readBlock(u32 addr, std::size_t len) const;

  /// Zeroes the whole address space.
  void clear();

 private:
  void checkRange(u32 addr, u32 len) const;
  std::vector<u8> bytes_;
};

/// Virtual page number of an address.
[[nodiscard]] constexpr u32 pageOf(u32 addr) noexcept {
  return addr / kPageBytes;
}

}  // namespace wp::mem
