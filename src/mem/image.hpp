// Loadable program image produced by the linker and consumed by the
// simulator and the profiler.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mem/memory.hpp"
#include "support/bitops.hpp"

namespace wp::mem {

/// A linked program: code bytes (loaded at kCodeBase), initialized data
/// (loaded at kDataBase) and a symbol table mapping basic-block ids and
/// function names to addresses.
struct Image {
  std::vector<u8> code;
  std::vector<u8> data;
  u32 entry = kCodeBase;

  /// Start address of every laid-out basic block, keyed by the block's
  /// module-global id. Used by the profiler to map executed addresses
  /// back to IR blocks.
  std::map<u32, u32> block_addr;

  /// First address past each block (same key), for address->block lookup.
  std::map<u32, u32> block_end;

  /// Function entry addresses by name.
  std::map<std::string, u32> function_addr;

  [[nodiscard]] u32 codeEnd() const {
    return kCodeBase + static_cast<u32>(code.size());
  }

  /// Loads code and data segments into @p memory.
  void loadInto(Memory& memory) const;
};

}  // namespace wp::mem
