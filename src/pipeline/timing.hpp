// Timing model of the 7-stage, single-issue, in-order XScale-like core
// (Table 1): in-order issue with a register scoreboard, out-of-order
// completion, one ALU, one MAC, one load/store unit, a branch target
// buffer, and blocking caches.
//
// The model tracks, per architectural register, the cycle its value
// becomes available; an instruction issues at the max of the pipeline
// cycle and its source-ready cycles, matching a scoreboard stall. Fetch
// and data-cache penalties are supplied per instruction by the caller
// (the Processor), which owns the cache models.
#pragma once

#include <array>
#include <vector>

#include "isa/isa.hpp"

namespace wp::pipeline {

struct TimingConfig {
  u32 branch_mispredict_penalty = 4;
  u32 load_use_latency = 3;  ///< cycles before a load's result is usable
  u32 mul_latency = 3;       ///< MAC unit latency
  u32 btb_entries = 128;
};

struct BranchStats {
  u64 branches = 0;
  u64 mispredicts = 0;
  void reset() { *this = BranchStats{}; }
};

/// Source/destination registers of an instruction, plus flag use/def.
struct RegUse {
  std::array<u8, 3> srcs{};
  u32 num_srcs = 0;
  bool has_dst = false;
  u8 dst = 0;
  bool reads_flags = false;
  bool writes_flags = false;
};

[[nodiscard]] RegUse regUsesOf(const isa::Instruction& inst);

class TimingModel {
 public:
  explicit TimingModel(const TimingConfig& config);

  /// Advances time over one committed instruction.
  /// @param fetch_cycles  cycles the fetch path reported (>= 1)
  /// @param mem_cycles    D-cache cycles for loads/stores (0 otherwise)
  /// @param taken         branch outcome (control transfers only)
  /// @param target        branch target (control transfers only)
  void onInstruction(const isa::Instruction& inst, u32 pc, u32 fetch_cycles,
                     u32 mem_cycles, bool taken, u32 target);

  [[nodiscard]] u64 cycles() const { return cycle_; }
  [[nodiscard]] const BranchStats& branchStats() const { return branches_; }

  void reset();

 private:
  struct BtbEntry {
    bool valid = false;
    u32 tag = 0;
    u32 target = 0;
    u8 counter = 0;  // 2-bit saturating, taken if >= 2
  };

  /// Predicts direction+target for the branch at @p pc; returns true if
  /// the prediction matches (@p taken, @p target). Updates the BTB.
  bool predictAndUpdate(u32 pc, bool taken, u32 target);

  TimingConfig config_;
  u64 cycle_ = 0;
  std::array<u64, isa::kNumRegisters> reg_ready_{};
  u64 flags_ready_ = 0;
  std::vector<BtbEntry> btb_;
  BranchStats branches_;
};

}  // namespace wp::pipeline
