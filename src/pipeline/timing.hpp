// Timing model of the 7-stage, single-issue, in-order XScale-like core
// (Table 1): in-order issue with a register scoreboard, out-of-order
// completion, one ALU, one MAC, one load/store unit, a branch target
// buffer, and blocking caches.
//
// The model tracks, per architectural register, the cycle its value
// becomes available; an instruction issues at the max of the pipeline
// cycle and its source-ready cycles, matching a scoreboard stall. Fetch
// and data-cache penalties are supplied per instruction by the caller
// (the Processor), which owns the cache models.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "isa/isa.hpp"
#include "support/ensure.hpp"

namespace wp::pipeline {

struct TimingConfig {
  u32 branch_mispredict_penalty = 4;
  u32 load_use_latency = 3;  ///< cycles before a load's result is usable
  u32 mul_latency = 3;       ///< MAC unit latency
  u32 btb_entries = 128;
};

struct BranchStats {
  u64 branches = 0;
  u64 mispredicts = 0;
  void reset() { *this = BranchStats{}; }
};

/// Source/destination registers of an instruction, plus flag use/def.
struct RegUse {
  std::array<u8, 3> srcs{};
  u32 num_srcs = 0;
  bool has_dst = false;
  u8 dst = 0;
  bool reads_flags = false;
  bool writes_flags = false;
};

[[nodiscard]] RegUse regUsesOf(const isa::Instruction& inst);

class TimingModel {
 public:
  explicit TimingModel(const TimingConfig& config);

  /// Advances time over one committed instruction.
  /// @param fetch_cycles  cycles the fetch path reported (>= 1)
  /// @param mem_cycles    D-cache cycles for loads/stores (0 otherwise)
  /// @param taken         branch outcome (control transfers only)
  /// @param target        branch target (control transfers only)
  void onInstruction(const isa::Instruction& inst, u32 pc, u32 fetch_cycles,
                     u32 mem_cycles, bool taken, u32 target);

  /// Same, with the register-use decode precomputed. The block engine
  /// caches regUsesOf() per static instruction alongside its basic-block
  /// index, so the hot loop skips the format/opcode switch. Runs once
  /// per committed instruction — defined inline below so the engine
  /// loops can absorb it.
  void onInstruction(const isa::Instruction& inst, const RegUse& use, u32 pc,
                     u32 fetch_cycles, u32 mem_cycles, bool taken, u32 target) {
    WP_ENSURE(fetch_cycles >= 1, "fetch must take at least one cycle");

    // Fetch stalls (cache miss, TLB walk, way-hint second access) delay
    // the pipeline front end directly.
    cycle_ += fetch_cycles - 1;

    // Scoreboard: issue waits for sources.
    u64 issue = cycle_ + 1;
    for (u32 i = 0; i < use.num_srcs; ++i) {
      issue = std::max(issue, reg_ready_[use.srcs[i]]);
    }
    if (use.reads_flags) issue = std::max(issue, flags_ready_);
    cycle_ = issue;

    // Completion latency (out-of-order completion: later independent
    // instructions are not delayed, so only the scoreboard entry moves).
    u64 result_ready = issue + 1;
    if (isa::isMultiply(inst.op)) {
      result_ready = issue + config_.mul_latency;
    } else if (isa::isLoad(inst.op)) {
      // mem_cycles covers the D-cache access (1 on a hit); the load-use
      // latency covers the remaining pipeline distance.
      result_ready = issue + mem_cycles + config_.load_use_latency - 1;
    } else if (isa::isStore(inst.op)) {
      // Stores retire through the write buffer; a miss stalls the unit.
      if (mem_cycles > 1) cycle_ += mem_cycles - 1;
    }
    if (use.has_dst) reg_ready_[use.dst] = result_ready;
    if (use.writes_flags) flags_ready_ = issue + 1;

    if (isa::isControlTransfer(inst.op)) {
      ++branches_.branches;
      const bool correct = predictAndUpdate(pc, taken, target);
      if (!correct) {
        ++branches_.mispredicts;
        cycle_ += config_.branch_mispredict_penalty;
      }
    }
  }

  [[nodiscard]] u64 cycles() const { return cycle_; }
  [[nodiscard]] const BranchStats& branchStats() const { return branches_; }

  void reset();

 private:
  struct BtbEntry {
    bool valid = false;
    u32 tag = 0;
    u32 target = 0;
    u8 counter = 0;  // 2-bit saturating, taken if >= 2
  };

  /// Predicts direction+target for the branch at @p pc; returns true if
  /// the prediction matches (@p taken, @p target). Updates the BTB.
  bool predictAndUpdate(u32 pc, bool taken, u32 target);

  TimingConfig config_;
  u64 cycle_ = 0;
  std::array<u64, isa::kNumRegisters> reg_ready_{};
  u64 flags_ready_ = 0;
  std::vector<BtbEntry> btb_;
  BranchStats branches_;
};

}  // namespace wp::pipeline
