#include "pipeline/timing.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace wp::pipeline {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

RegUse regUsesOf(const Instruction& inst) {
  RegUse u;
  const auto addSrc = [&u](u8 r) { u.srcs[u.num_srcs++] = r; };
  switch (isa::formatOf(inst.op)) {
    case Format::kRType:
      switch (inst.op) {
        case Opcode::kMov:
        case Opcode::kMvn:
          addSrc(inst.rm);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kCmp:
          addSrc(inst.rn);
          addSrc(inst.rm);
          u.writes_flags = true;
          break;
        case Opcode::kMla:
          addSrc(inst.rd);  // accumulator
          addSrc(inst.rn);
          addSrc(inst.rm);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kLdrx:
        case Opcode::kLdrbx:
          addSrc(inst.rn);
          addSrc(inst.rm);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kStrx:
        case Opcode::kStrbx:
          addSrc(inst.rd);  // store data
          addSrc(inst.rn);
          addSrc(inst.rm);
          break;
        default:
          addSrc(inst.rn);
          addSrc(inst.rm);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
      }
      break;
    case Format::kIType:
      switch (inst.op) {
        case Opcode::kCmpi:
          addSrc(inst.rn);
          u.writes_flags = true;
          break;
        case Opcode::kMovi:
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kMovhi:
          addSrc(inst.rd);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kLdr:
        case Opcode::kLdrb:
          addSrc(inst.rn);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
        case Opcode::kStr:
        case Opcode::kStrb:
          addSrc(inst.rd);
          addSrc(inst.rn);
          break;
        default:
          addSrc(inst.rn);
          u.has_dst = true;
          u.dst = inst.rd;
          break;
      }
      break;
    case Format::kBType:
      if (isa::isConditionalBranch(inst.op)) u.reads_flags = true;
      if (inst.op == Opcode::kBl) {
        u.has_dst = true;
        u.dst = isa::kLinkReg;
      }
      break;
    case Format::kJType:
      addSrc(inst.rn);
      break;
    case Format::kNone:
      break;
  }
  return u;
}

TimingModel::TimingModel(const TimingConfig& config)
    : config_(config), btb_(config.btb_entries) {
  WP_ENSURE(isPow2(config.btb_entries), "BTB entries must be a power of two");
}

bool TimingModel::predictAndUpdate(u32 pc, bool taken, u32 target) {
  const u32 index = (pc >> 2) & (static_cast<u32>(btb_.size()) - 1);
  BtbEntry& e = btb_[index];
  const bool entry_matches = e.valid && e.tag == pc;
  const bool predicted_taken = entry_matches && e.counter >= 2;
  const u32 predicted_target = entry_matches ? e.target : 0;

  const bool correct =
      predicted_taken == taken && (!taken || predicted_target == target);

  // Update: (re)allocate on taken branches, train the counter.
  if (!entry_matches) {
    if (taken) {
      e.valid = true;
      e.tag = pc;
      e.target = target;
      e.counter = 2;
    }
  } else {
    if (taken) {
      e.counter = static_cast<u8>(std::min<u32>(e.counter + 1, 3));
      e.target = target;
    } else {
      e.counter = static_cast<u8>(e.counter > 0 ? e.counter - 1 : 0);
    }
  }
  return correct;
}

void TimingModel::onInstruction(const Instruction& inst, u32 pc,
                                u32 fetch_cycles, u32 mem_cycles, bool taken,
                                u32 target) {
  onInstruction(inst, regUsesOf(inst), pc, fetch_cycles, mem_cycles, taken,
                target);
}

void TimingModel::reset() {
  cycle_ = 0;
  reg_ready_.fill(0);
  flags_ready_ = 0;
  std::fill(btb_.begin(), btb_.end(), BtbEntry{});
  branches_.reset();
}

}  // namespace wp::pipeline
